/**
 * @file
 * Unit tests for the wave_analyze cross-TU symbol-graph builder
 * (tools/analyze/symbols.h): head parsing against this codebase's
 * return-type-first style, conservative name resolution (overload
 * sets, shadowed names, out-of-line members, anonymous namespaces),
 * fact collection on cold lines, and the dead-lifetime scan. These
 * link wave_analyze_core directly — no subprocess, no fixtures on
 * disk.
 */
// wave-domain: harness
#include <gtest/gtest.h>

#include <string>

#include "analyze/coroutines.h"
#include "analyze/source.h"
#include "analyze/symbols.h"

namespace {

using wa::ParseSource;
using wa::SourceFile;
using wa::SymbolGraph;
using wa::SymKind;

const wa::Symbol*
FindSymbol(const SymbolGraph& g, const std::string& full)
{
    for (const wa::Symbol& s : g.symbols()) {
        if (s.full == full) return &s;
    }
    return nullptr;
}

TEST(SymbolGraph, ParsesNameFirstStyleFreeFunction)
{
    const SourceFile f = ParseSource("a.cc",
                                     "// wave-domain: neutral\n"
                                     "namespace wave::x {\n"
                                     "int\n"
                                     "Twice(int v)\n"
                                     "{\n"
                                     "    return v * 2;\n"
                                     "}\n"
                                     "}  // namespace wave::x\n");
    SymbolGraph g;
    g.AddFile(f);
    const wa::Symbol* s = FindSymbol(g, "wave::x::Twice");
    ASSERT_NE(s, nullptr);
    EXPECT_EQ(s->kind, SymKind::kFunction);
    EXPECT_EQ(s->line, 4);
    EXPECT_FALSE(s->file_local);
    EXPECT_FALSE(s->member);
}

TEST(SymbolGraph, ParsesOutOfLineMemberAndOneLinerBody)
{
    const SourceFile f = ParseSource(
        "ring.cc",
        "// wave-domain: neutral\n"
        "namespace wave::x {\n"
        "void\n"
        "Ring::Push(int v)\n"
        "{\n"
        "    Store(v);\n"
        "}\n"
        "bool Ring::Empty() const { return size_ == 0; }\n"
        "}  // namespace wave::x\n");
    SymbolGraph g;
    g.AddFile(f);
    const wa::Symbol* push = FindSymbol(g, "wave::x::Ring::Push");
    ASSERT_NE(push, nullptr);
    EXPECT_TRUE(push->member);
    const wa::Symbol* empty = FindSymbol(g, "wave::x::Ring::Empty");
    ASSERT_NE(empty, nullptr);
    EXPECT_TRUE(empty->member);
    EXPECT_EQ(empty->body_begin, empty->body_end);
}

TEST(SymbolGraph, ResolvesQualifiedCallToOutOfLineMember)
{
    const SourceFile def = ParseSource(
        "wheel.cc",
        "// wave-domain: neutral\n"
        "namespace wave::x {\n"
        "void\n"
        "Wheel::Refill()\n"
        "{\n"
        "    grow();\n"
        "}\n"
        "}  // namespace wave::x\n");
    const SourceFile use = ParseSource(
        "caller.cc",
        "// wave-domain: neutral\n"
        "namespace wave::x {\n"
        "void\n"
        "Caller::Run(Wheel& w)\n"
        "{\n"
        "    Wheel::Refill();\n"
        "}\n"
        "}  // namespace wave::x\n");
    SymbolGraph g;
    g.AddFile(def);
    g.AddFile(use);
    g.ResolveFile(use);
    ASSERT_EQ(g.calls().size(), 1u);
    const wa::Symbol& callee = g.symbols()[static_cast<std::size_t>(
        g.calls()[0].callee)];
    EXPECT_EQ(callee.full, "wave::x::Wheel::Refill");
}

TEST(SymbolGraph, OverloadSetResolvesToTheUniqueDefiningFile)
{
    // Two overloads of one name in one file: a cross-file call still
    // resolves (any overload pins the same defining file).
    const SourceFile def = ParseSource("enc.cc",
                                       "// wave-domain: neutral\n"
                                       "namespace wave::x {\n"
                                       "int\n"
                                       "Encode(int v)\n"
                                       "{\n"
                                       "    return v;\n"
                                       "}\n"
                                       "int\n"
                                       "Encode(int v, int shift)\n"
                                       "{\n"
                                       "    return v << shift;\n"
                                       "}\n"
                                       "}  // namespace wave::x\n");
    const SourceFile use = ParseSource("use.cc",
                                       "// wave-domain: neutral\n"
                                       "namespace wave::x {\n"
                                       "int\n"
                                       "Wrap(int v)\n"
                                       "{\n"
                                       "    return Encode(v, 3);\n"
                                       "}\n"
                                       "}  // namespace wave::x\n");
    SymbolGraph g;
    g.AddFile(def);
    g.AddFile(use);
    g.ResolveFile(use);
    ASSERT_EQ(g.calls().size(), 1u);
    EXPECT_EQ(g.symbols()[static_cast<std::size_t>(
                              g.calls()[0].callee)]
                  .file,
              "enc.cc");
}

TEST(SymbolGraph, AmbiguousNameAcrossFilesResolvesNowhere)
{
    const SourceFile a = ParseSource("a.cc",
                                     "// wave-domain: neutral\n"
                                     "namespace wave::a {\n"
                                     "void\n"
                                     "Tick()\n"
                                     "{\n"
                                     "}\n"
                                     "}  // namespace wave::a\n");
    const SourceFile b = ParseSource("b.cc",
                                     "// wave-domain: neutral\n"
                                     "namespace wave::b {\n"
                                     "void\n"
                                     "Tick()\n"
                                     "{\n"
                                     "}\n"
                                     "}  // namespace wave::b\n");
    const SourceFile use = ParseSource("use.cc",
                                       "// wave-domain: neutral\n"
                                       "namespace wave::c {\n"
                                       "void\n"
                                       "Run()\n"
                                       "{\n"
                                       "    Tick();\n"
                                       "}\n"
                                       "}  // namespace wave::c\n");
    SymbolGraph g;
    g.AddFile(a);
    g.AddFile(b);
    g.AddFile(use);
    g.ResolveFile(use);
    EXPECT_TRUE(g.calls().empty())
        << "an unqualified call to an ambiguous name must not "
           "fabricate an edge";
    // A qualified call disambiguates.
    EXPECT_GE(g.Resolve("wave::b::Tick", "use.cc", false), 0);
}

TEST(SymbolGraph, AnonymousNamespaceSymbolsNeverResolveCrossFile)
{
    const SourceFile def = ParseSource("impl.cc",
                                       "// wave-domain: neutral\n"
                                       "namespace wave::x {\n"
                                       "namespace {\n"
                                       "void\n"
                                       "Helper()\n"
                                       "{\n"
                                       "}\n"
                                       "}  // namespace\n"
                                       "}  // namespace wave::x\n");
    SymbolGraph g;
    g.AddFile(def);
    const wa::Symbol* s = FindSymbol(g, "wave::x::Helper");
    ASSERT_NE(s, nullptr);
    EXPECT_TRUE(s->file_local);
    EXPECT_LT(g.Resolve("Helper", "other.cc", false), 0);
    EXPECT_GE(g.Resolve("Helper", "impl.cc", false), 0);
}

TEST(SymbolGraph, LocalDeclarationShadowingAGlobalIsNotAReference)
{
    const SourceFile def = ParseSource("owner.cc",
                                       "// wave-domain: neutral\n"
                                       "namespace wave::x {\n"
                                       "int g_count = 0;\n"
                                       "}  // namespace wave::x\n");
    const SourceFile use = ParseSource(
        "user.cc",
        "// wave-domain: neutral\n"
        "namespace wave::x {\n"
        "int\n"
        "Sum()\n"
        "{\n"
        "    int g_count = 1;\n"
        "    return g_count;\n"
        "}\n"
        "}  // namespace wave::x\n");
    SymbolGraph g;
    g.AddFile(def);
    g.AddFile(use);
    g.ResolveFile(use);
    // The declaration on line 6 must not count; the `return` use does
    // (conservative: the local actually shadows, but text-level
    // resolution cannot know — the rule errs toward reporting).
    for (const wa::RefEdge& r : g.refs()) {
        EXPECT_NE(r.line, 6) << "declaration counted as a reference";
    }
}

TEST(SymbolGraph, MutableAndConstGlobalsAreClassified)
{
    const SourceFile f = ParseSource(
        "globals.cc",
        "// wave-domain: neutral\n"
        "namespace wave::x {\n"
        "constexpr int kLimit = 8;\n"
        "int g_hits = 0;\n"
        "}  // namespace wave::x\n");
    SymbolGraph g;
    g.AddFile(f);
    const wa::Symbol* limit = FindSymbol(g, "wave::x::kLimit");
    ASSERT_NE(limit, nullptr);
    EXPECT_TRUE(limit->is_const);
    const wa::Symbol* hits = FindSymbol(g, "wave::x::g_hits");
    ASSERT_NE(hits, nullptr);
    EXPECT_FALSE(hits->is_const);
    EXPECT_EQ(hits->kind, SymKind::kGlobal);
}

TEST(SymbolGraph, ColdLineFactsAreCollectedAndHotLinesAreNot)
{
    const SourceFile f = ParseSource(
        "facts.cc",
        "// wave-domain: neutral\n"
        "namespace wave::x {\n"
        "int*\n"
        "ColdAlloc()\n"
        "{\n"
        "    return new int(1);\n"
        "}\n"
        "// wave-hot: begin\n"
        "int*\n"
        "HotAlloc()\n"
        "{\n"
        "    return new int(2);\n"
        "}\n"
        "// wave-hot: end\n"
        "}  // namespace wave::x\n");
    SymbolGraph g;
    g.AddFile(f);
    const wa::Symbol* cold = FindSymbol(g, "wave::x::ColdAlloc");
    ASSERT_NE(cold, nullptr);
    ASSERT_EQ(cold->facts.size(), 1u);
    EXPECT_EQ(cold->facts[0].fact, wa::Fact::kAlloc);
    // The hot function's allocation is the per-file W101 rule's
    // jurisdiction, not a W301 sink fact.
    const wa::Symbol* hot = FindSymbol(g, "wave::x::HotAlloc");
    ASSERT_NE(hot, nullptr);
    EXPECT_TRUE(hot->hot);
    EXPECT_TRUE(hot->facts.empty());
}

TEST(SymbolGraph, EnclosingFunctionPicksTheTightestBody)
{
    const SourceFile f = ParseSource("encl.cc",
                                     "// wave-domain: neutral\n"
                                     "namespace wave::x {\n"
                                     "int\n"
                                     "Outer(int v)\n"
                                     "{\n"
                                     "    return v + 1;\n"
                                     "}\n"
                                     "}  // namespace wave::x\n");
    SymbolGraph g;
    g.AddFile(f);
    const int idx = g.EnclosingFunction("encl.cc", 6);
    ASSERT_GE(idx, 0);
    EXPECT_EQ(g.symbols()[static_cast<std::size_t>(idx)].full,
              "wave::x::Outer");
    EXPECT_LT(g.EnclosingFunction("encl.cc", 2), 0);
}

TEST(DeadLifetime, AnnotationWithNoTaskHeadIsDead)
{
    const SourceFile f = ParseSource(
        "dead.cc",
        "// wave-domain: neutral\n"
        "namespace wave::x {\n"
        "// wave-lifetime(caller-awaits)\n"
        "int\n"
        "PlainFunction(int v)\n"
        "{\n"
        "    return v;\n"
        "}\n"
        "}  // namespace wave::x\n");
    const auto dead = wa::DeadLifetimeLines(f);
    ASSERT_EQ(dead.size(), 1u);
    EXPECT_EQ(dead[0], 3);
}

TEST(DeadLifetime, AnnotationOnATaskHeadIsAlive)
{
    SourceFile f = ParseSource(
        "alive.cc",
        "// wave-domain: neutral\n"
        "namespace wave::x {\n"
        "// wave-lifetime(caller-awaits)\n"
        "Task<int>\n"
        "Pump(Queue& q)\n"
        "{\n"
        "    co_return co_await q.Receive();\n"
        "}\n"
        "}  // namespace wave::x\n");
    f.coroutines = wa::ParseCoroutines(f);
    EXPECT_TRUE(wa::DeadLifetimeLines(f).empty());
}

}  // namespace
