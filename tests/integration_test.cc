/**
 * @file
 * Cross-module integration tests: full Wave deployments under load,
 * fault injection (agent wedge -> watchdog kill -> replacement agent
 * re-pulls state), coherent-interconnect deployments, and end-to-end
 * invariants (no request lost, no thread double-run).
 */
#include <gtest/gtest.h>

#include "ghost/agent.h"
#include "ghost/kernel.h"
#include "ghost/transport.h"
#include "machine/machine.h"
#include "sched/fifo.h"
#include "sched/shinjuku.h"
#include "sim/simulator.h"
#include "wave/runtime.h"
#include "wave/watchdog.h"
#include "workload/kv_service.h"
#include "workload/loadgen.h"
#include "workload/sched_experiment.h"

namespace wave {
namespace {

using namespace sim::time_literals;
using sim::Simulator;
using sim::Task;

/** Full Wave KV deployment with direct access to every layer. */
struct WaveWorld {
    explicit WaveWorld(int cores = 4, int workers = 16)
        : machine(sim),
          runtime(sim, machine, pcie::PcieConfig{},
                  api::OptimizationConfig::Full()),
          transport(runtime, cores),
          kernel(sim, machine, transport),
          policy(std::make_shared<sched::FifoPolicy>()),
          service(sim, kernel, workers)
    {
        for (int i = 0; i < cores; ++i) worker_cores.push_back(i);
    }

    AgentId
    StartAgent(int nic_core)
    {
        ghost::AgentConfig cfg;
        cfg.cores = worker_cores;
        cfg.prestage_min_depth = 2;
        agent = std::make_shared<ghost::GhostAgent>(transport, policy,
                                                    cfg);
        return runtime.StartWaveAgent(agent, nic_core);
    }

    Simulator sim;
    machine::Machine machine;
    WaveRuntime runtime;
    ghost::WaveSchedTransport transport;
    ghost::KernelSched kernel;
    std::shared_ptr<sched::FifoPolicy> policy;
    std::shared_ptr<ghost::GhostAgent> agent;
    workload::KvService service;
    std::vector<int> worker_cores;
};

TEST(Integration, AgentWedgeWatchdogRestartKeepsServing)
{
    WaveWorld world;
    const AgentId gen1 = world.StartAgent(0);
    world.kernel.Start(world.worker_cores);

    workload::LoadGenConfig lg;
    lg.rate_rps = 50'000;
    lg.end_time = sim::TimeNs{200_ms};
    world.sim.Spawn(
        workload::RunLoadGenerator(world.sim, world.service, lg));

    // Watchdog: kill + start a fresh agent with a FRESH policy. The
    // replacement re-learns runnable threads from kernel re-announces.
    bool restarted = false;
    Watchdog dog(world.sim, 20_ms, 1_ms, [&] {
        world.runtime.KillWaveAgent(gen1);
        auto policy2 = std::make_shared<sched::FifoPolicy>();
        ghost::AgentConfig cfg;
        cfg.cores = world.worker_cores;
        auto agent2 = std::make_shared<ghost::GhostAgent>(
            world.transport, policy2, cfg);
        world.runtime.StartWaveAgent(agent2, 1);
        for (const auto& [tid, rec] : world.kernel.Threads().All()) {
            if (rec.state == ghost::ThreadState::kRunnable) {
                // Source-of-truth re-pull: re-announce runnable threads.
                world.sim.Spawn([](ghost::KernelSched& k,
                                   ghost::Tid t) -> Task<> {
                    k.WakeThread(t);
                    co_return;
                }(world.kernel, tid));
            }
        }
        // Nudge blocked-worker bookkeeping: the dispatcher re-submits
        // by waking idle workers on the next request anyway.
        restarted = true;
    });
    dog.Arm();
    world.sim.Spawn([](Simulator& s, ghost::KernelSched& k,
                       Watchdog& d) -> Task<> {
        std::uint64_t last = 0;
        for (;;) {
            co_await s.Delay(1_ms);
            if (k.Stats().commits_ok > last) {
                last = k.Stats().commits_ok;
                d.NoteDecision();
            }
        }
    }(world.sim, world.kernel, dog));

    // Wedge the first agent at 30 ms without telling anyone.
    world.sim.Schedule(30_ms, [&] { world.runtime.KillWaveAgent(gen1); });

    world.sim.RunUntil(sim::TimeNs{60_ms});
    const std::uint64_t at_mid = world.service.Completed();
    EXPECT_TRUE(restarted) << "watchdog should have fired by now";

    world.sim.RunUntil(sim::TimeNs{200_ms});
    EXPECT_GT(world.service.Completed(), at_mid + 1000)
        << "service must keep completing requests after recovery";
}

TEST(Integration, UpiDeploymentServesLoad)
{
    workload::SchedExperimentConfig cfg;
    cfg.deployment = workload::Deployment::kWave;
    cfg.pcie = pcie::PcieConfig::Upi();
    cfg.nic_speed = 3.0 / 3.5;  // emulated x86 "SmartNIC" socket
    cfg.worker_cores = 8;
    cfg.num_workers = 32;
    cfg.offered_rps = 200'000;
    cfg.warmup_ns = 10_ms;
    cfg.measure_ns = 80_ms;
    const auto r = workload::RunSchedExperiment(cfg);
    EXPECT_NEAR(r.achieved_rps, 200'000, 10'000);
    EXPECT_LT(r.get_p99, 100'000u);
}

TEST(Integration, UpiBeatsPcieAtEqualCores)
{
    auto run = [](pcie::PcieConfig pc, double nic_speed) {
        workload::SchedExperimentConfig cfg;
        cfg.deployment = workload::Deployment::kWave;
        cfg.pcie = pc;
        cfg.nic_speed = nic_speed;
        cfg.worker_cores = 8;
        cfg.num_workers = 48;
        cfg.offered_rps = 600'000;  // near saturation
        cfg.warmup_ns = 10_ms;
        cfg.measure_ns = 80_ms;
        return workload::RunSchedExperiment(cfg);
    };
    const auto upi = run(pcie::PcieConfig::Upi(), 3.0 / 3.5);
    const auto pcie_nic = run(pcie::PcieConfig{}, 0.61);
    EXPECT_LE(upi.get_p99.ToDouble(), pcie_nic.get_p99.ToDouble() * 1.05)
        << "a coherent interconnect must not be worse (§7.3.3)";
}

TEST(Integration, EveryCommittedDecisionRunsExactlyOneThread)
{
    // Conservation check: over a steady run, completed requests can
    // never exceed successful commits (each wake->run consumes one),
    // and failed commits stay rare.
    workload::SchedExperimentConfig cfg;
    cfg.deployment = workload::Deployment::kWave;
    cfg.worker_cores = 8;
    cfg.num_workers = 32;
    cfg.offered_rps = 300'000;
    cfg.warmup_ns = 0;
    cfg.measure_ns = 100_ms;
    const auto r = workload::RunSchedExperiment(cfg);
    EXPECT_GT(r.completed, 25'000u);
    EXPECT_LT(r.commits_failed * 50, r.agent_decisions + 1);
}

TEST(Integration, ShinjukuBoundsGetTailUnderRangeStorm)
{
    // 2% 10ms RANGEs would monopolize 8 cores without preemption;
    // Shinjuku's 30 us slice keeps GETs flowing.
    workload::SchedExperimentConfig cfg;
    cfg.deployment = workload::Deployment::kWave;
    cfg.policy = workload::PolicyKind::kShinjuku;
    cfg.worker_cores = 8;
    cfg.num_workers = 48;
    cfg.get_fraction = 0.98;
    cfg.offered_rps = 25'000;
    cfg.warmup_ns = 20_ms;
    cfg.measure_ns = 150_ms;
    const auto r = workload::RunSchedExperiment(cfg);
    EXPECT_GT(r.preemptions, 500u);
    EXPECT_LT(r.get_p99, 300'000u)
        << "GET p99 must stay far below the 10 ms RANGE service time";
}

}  // namespace
}  // namespace wave
