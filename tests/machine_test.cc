/**
 * @file
 * Unit tests for the machine model: CPU work scaling, clock domains,
 * topology, and the turbo-frequency curves behind Figure 5.
 */
#include <gtest/gtest.h>

#include "machine/cpu.h"
#include "machine/machine.h"
#include "machine/turbo.h"
#include "sim/simulator.h"

namespace wave::machine {
namespace {

using sim::Simulator;
using sim::Task;

TEST(Cpu, WorkAtReferenceSpeedTakesNominalTime)
{
    Simulator sim;
    ClockDomain domain(1.0);
    Cpu cpu(sim, "host0", &domain);

    sim.Spawn([](Simulator& s, Cpu& c) -> Task<> {
        co_await c.Work(1000);
        EXPECT_EQ(s.Now().ns(), 1000u);
    }(sim, cpu));
    sim.Run();
    EXPECT_EQ(cpu.BusyNs(), 1000u);
}

TEST(Cpu, SlowerDomainStretchesWork)
{
    Simulator sim;
    ClockDomain domain(0.5);
    Cpu cpu(sim, "nic0", &domain);

    sim.Spawn([](Simulator& s, Cpu& c) -> Task<> {
        co_await c.Work(1000);
        EXPECT_EQ(s.Now().ns(), 2000u);
    }(sim, cpu));
    sim.Run();
}

TEST(Cpu, DomainSpeedChangeAffectsSubsequentWork)
{
    Simulator sim;
    ClockDomain domain(1.0);
    Cpu cpu(sim, "host0", &domain);

    sim.Spawn([](Simulator& s, Cpu& c) -> Task<> {
        co_await c.Work(100);
        c.Domain().SetSpeed(2.0);  // e.g. turbo kicks in
        const auto t0 = s.Now();
        co_await c.Work(100);
        EXPECT_EQ(s.Now() - t0, 50u);
    }(sim, cpu));
    sim.Run();
}

TEST(Machine, BuildsPaperTopology)
{
    Simulator sim;
    MachineConfig config;
    Machine machine(sim, config);
    EXPECT_EQ(machine.HostCoreCount(), 16);
    EXPECT_EQ(machine.NicCoreCount(), 16);
    EXPECT_EQ(machine.CcxOf(0), 0);
    EXPECT_EQ(machine.CcxOf(7), 0);
    EXPECT_EQ(machine.CcxOf(8), 1);
    EXPECT_EQ(machine.HostCpu(3).Name(), "host3");
    EXPECT_EQ(machine.NicCpu(15).Name(), "nic15");
}

TEST(Machine, NicCoresAreSlowerThanHostCores)
{
    Simulator sim;
    Machine machine(sim);
    EXPECT_LT(machine.NicDomain().Speed(), machine.HostDomain().Speed());
}

TEST(Turbo, FewActiveCoresGetMaxBoostWhenIdleCoresSleepDeep)
{
    TurboModel turbo;
    EXPECT_DOUBLE_EQ(turbo.Frequency(1, /*idle_cores_deep=*/true).ghz(), 3.50);
    EXPECT_DOUBLE_EQ(turbo.Frequency(8, true).ghz(), 3.50);
}

TEST(Turbo, ShallowIdleLimitsBoost)
{
    TurboModel turbo;
    EXPECT_LT(turbo.Frequency(1, /*idle_cores_deep=*/false).ghz(),
              turbo.Frequency(1, /*idle_cores_deep=*/true).ghz());
}

TEST(Turbo, FullyLoadedSocketConvergesRegardlessOfIdleState)
{
    TurboModel turbo;
    EXPECT_DOUBLE_EQ(turbo.Frequency(64, true).ghz(),
                     turbo.Frequency(64, false).ghz());
}

TEST(Turbo, FrequencyIsMonotonicallyNonIncreasingInActiveCores)
{
    TurboModel turbo;
    for (bool deep : {true, false}) {
        double prev = 1e9;
        for (int active = 1; active <= 64; ++active) {
            const double f = turbo.Frequency(active, deep).ghz();
            EXPECT_LE(f, prev) << "active=" << active << " deep=" << deep;
            prev = f;
        }
    }
}

TEST(Turbo, NeverBelowBaseFrequency)
{
    TurboModel turbo;
    for (int active = 1; active <= 128; ++active) {
        EXPECT_GE(turbo.Frequency(active, true).ghz(), 2.45);
        EXPECT_GE(turbo.Frequency(active, false).ghz(), 2.45);
    }
}

TEST(Turbo, EdgeActivityLevelsClampToTheCurveEnds)
{
    // Degenerate activity counts show up under fault injection (e.g. a
    // stalled agent leaves zero cores active, a reannounce storm marks
    // everything active at once); the curve must clamp, not extrapolate.
    TurboModel turbo;
    // Zero (or negative) active cores clamp to the 1-core knot.
    EXPECT_DOUBLE_EQ(turbo.Frequency(0, true).ghz(), 3.50);
    EXPECT_DOUBLE_EQ(turbo.Frequency(-3, true).ghz(), 3.50);
    EXPECT_DOUBLE_EQ(turbo.Frequency(0, false).ghz(), 3.20);
    // Beyond the last knot the curve holds its final value.
    EXPECT_DOUBLE_EQ(turbo.Frequency(65, true).ghz(),
                     turbo.Frequency(64, true).ghz());
    EXPECT_DOUBLE_EQ(turbo.Frequency(10'000, true).ghz(),
                     turbo.Frequency(64, true).ghz());
}

TEST(Turbo, KnotBoundariesAreExactAndSegmentsInterpolate)
{
    TurboModel turbo;
    const TurboModel::Config cfg;
    // Every configured knot must be reproduced exactly.
    for (const auto& [active, ghz] : cfg.deep_idle) {
        EXPECT_DOUBLE_EQ(turbo.Frequency(active, true).ghz(), ghz);
    }
    for (const auto& [active, ghz] : cfg.shallow_idle) {
        EXPECT_DOUBLE_EQ(turbo.Frequency(active, false).ghz(), ghz);
    }
    // Midpoint of the 16->32 deep segment: linear blend of 3.40/3.20.
    EXPECT_DOUBLE_EQ(turbo.Frequency(24, true).ghz(), 3.30);
}

TEST(Turbo, CurveHoldsUnderInjectedClockPerturbation)
{
    // A NIC-slowdown fault scales the NIC clock domain; the host turbo
    // model must be unaffected by domain speed changes (it keys only
    // on activity), so frequencies before/after the fault agree.
    sim::Simulator sim;
    machine::Machine machine(sim, machine::MachineConfig{});
    TurboModel turbo;
    const double before = turbo.Frequency(8, true).ghz();
    machine.NicDomain().SetSpeed(0.3);  // fault-window begin
    EXPECT_DOUBLE_EQ(turbo.Frequency(8, true).ghz(), before);
    machine.NicDomain().SetSpeed(0.61);  // fault-window end
    EXPECT_DOUBLE_EQ(turbo.Frequency(8, true).ghz(), before);
}

// Property sweep: the deep-idle advantage must shrink as more cores
// become active (the turbo budget is consumed by real work).
class TurboGapTest : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(TurboGapTest, DeepIdleAdvantageShrinksWithLoad)
{
    const auto [fewer, more] = GetParam();
    TurboModel turbo;
    const double gap_fewer = turbo.Frequency(fewer, true).ghz() /
                             turbo.Frequency(fewer, false).ghz();
    const double gap_more =
        turbo.Frequency(more, true).ghz() / turbo.Frequency(more, false).ghz();
    EXPECT_GE(gap_fewer, gap_more - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Pairs, TurboGapTest,
                         ::testing::Values(std::pair{1, 16},
                                           std::pair{8, 32},
                                           std::pair{16, 48},
                                           std::pair{32, 64},
                                           std::pair{1, 64}));

}  // namespace
}  // namespace wave::machine

namespace wave::machine {
namespace {

TEST(CpuDeath, DoubleWorkOnOneCoreIsABug)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    EXPECT_DEATH(
        {
            sim::Simulator sim;
            ClockDomain domain(1.0);
            Cpu cpu(sim, "host0", &domain);
            // Two concurrent activities on one hardware thread: the
            // model forbids it loudly rather than double-booking time.
            sim.Spawn([](Cpu& c) -> sim::Task<> {
                co_await c.Work(1000);
            }(cpu));
            sim.Spawn([](Cpu& c) -> sim::Task<> {
                co_await c.Work(1000);
            }(cpu));
            sim.Run();
        },
        "already busy");
}

}  // namespace
}  // namespace wave::machine
