/**
 * @file
 * Tests for the strong-typed time system: TimeNs/DurationNs dimensional
 * algebra (sim/time.h) and the clock-domain cycle types
 * (machine/cycles.h).
 *
 * Half of the value of these types is what they *reject*. The
 * static_asserts below use the detection idiom to pin down, as a
 * compile-time regression test, that the dimensionally meaningless
 * expressions — point + point, point * scalar, host-cycles +
 * nic-cycles, cycles + nanoseconds — do not compile. If someone adds
 * an operator that re-opens one of those holes, this file fails to
 * build.
 */
#include <gtest/gtest.h>

#include <type_traits>
#include <utility>

#include "machine/cycles.h"
#include "sim/time.h"

namespace wave::sim {
namespace {

using machine::DurationOf;
using machine::FreqGhz;
using machine::HostCycles;
using machine::HostCyclesIn;
using machine::NicCycles;
using machine::NicCyclesIn;
using namespace time_literals;

// --- detection idiom: does `A op B` compile? ---

template <typename A, typename B, typename = void>
struct CanAdd : std::false_type {};
template <typename A, typename B>
struct CanAdd<A, B,
              std::void_t<decltype(std::declval<A>() + std::declval<B>())>>
    : std::true_type {};

template <typename A, typename B, typename = void>
struct CanSubtract : std::false_type {};
template <typename A, typename B>
struct CanSubtract<
    A, B, std::void_t<decltype(std::declval<A>() - std::declval<B>())>>
    : std::true_type {};

template <typename A, typename B, typename = void>
struct CanMultiply : std::false_type {};
template <typename A, typename B>
struct CanMultiply<
    A, B, std::void_t<decltype(std::declval<A>() * std::declval<B>())>>
    : std::true_type {};

// Points and durations are distinct dimensions.
static_assert(!CanAdd<TimeNs, TimeNs>::value,
              "adding two points in time is meaningless");
static_assert(!CanMultiply<TimeNs, int>::value,
              "scaling a point in time is meaningless");
static_assert(!CanMultiply<TimeNs, TimeNs>::value);
static_assert(CanAdd<TimeNs, DurationNs>::value);
static_assert(CanAdd<DurationNs, TimeNs>::value);
static_assert(CanSubtract<TimeNs, TimeNs>::value);
static_assert(std::is_same_v<decltype(TimeNs{} - TimeNs{}), DurationNs>);
static_assert(std::is_same_v<decltype(TimeNs{} + DurationNs{}), TimeNs>);
static_assert(std::is_same_v<decltype(DurationNs{} / DurationNs{1}),
                             std::uint64_t>);

// A bare integer is a duration, never a point.
static_assert(std::is_convertible_v<int, DurationNs>);
static_assert(!std::is_convertible_v<int, TimeNs>);
static_assert(!std::is_convertible_v<double, DurationNs>,
              "floating-point time must go through FromDouble()");
static_assert(!std::is_convertible_v<DurationNs, TimeNs>);
static_assert(!std::is_convertible_v<TimeNs, DurationNs>);
static_assert(!std::is_convertible_v<TimeNs, std::uint64_t>);
static_assert(!std::is_convertible_v<DurationNs, std::uint64_t>);

// The two cycle domains never mix with each other or with time.
static_assert(!CanAdd<HostCycles, NicCycles>::value,
              "host cycles and NIC cycles tick at different rates");
static_assert(!CanSubtract<HostCycles, NicCycles>::value);
static_assert(!CanAdd<HostCycles, DurationNs>::value,
              "cycles and nanoseconds need a frequency to convert");
static_assert(!CanAdd<NicCycles, DurationNs>::value);
static_assert(!CanAdd<HostCycles, TimeNs>::value);
static_assert(!std::is_convertible_v<HostCycles, NicCycles>);
static_assert(!std::is_convertible_v<NicCycles, HostCycles>);
static_assert(!std::is_convertible_v<std::uint64_t, HostCycles>);
static_assert(CanAdd<HostCycles, HostCycles>::value);
static_assert(CanAdd<NicCycles, NicCycles>::value);

// A frequency is not a bare scalar or a speed ratio.
static_assert(!std::is_convertible_v<double, FreqGhz>);
static_assert(!std::is_convertible_v<FreqGhz, double>);

TEST(TimeTypes, PointDurationAlgebra)
{
    const TimeNs t0{1'000};
    const DurationNs d = 250;
    EXPECT_EQ((t0 + d).ns(), 1'250u);
    EXPECT_EQ((t0 - d).ns(), 750u);
    EXPECT_EQ((t0 + d) - t0, d);
    EXPECT_EQ(t0.SinceOrigin(), DurationNs{1'000});
    EXPECT_EQ(TimeNs{t0.SinceOrigin()}, t0);
}

TEST(TimeTypes, DurationArithmetic)
{
    DurationNs d = 100;
    d += 50;
    d -= 25;
    d *= 4;
    d /= 2;
    EXPECT_EQ(d.ns(), 250u);
    EXPECT_EQ((d * 2).ns(), 500u);
    EXPECT_EQ((2 * d).ns(), 500u);
    EXPECT_EQ((d / 5).ns(), 50u);
    EXPECT_EQ(d / DurationNs{100}, 2u);
    EXPECT_EQ((d % DurationNs{100}).ns(), 50u);
}

TEST(TimeTypes, LiteralsAndConstants)
{
    EXPECT_EQ(1_us, kMicrosecond);
    EXPECT_EQ(1_ms, kMillisecond);
    EXPECT_EQ(1_s, kSecond);
    EXPECT_EQ((3_ms).ns(), 3'000'000u);
    EXPECT_DOUBLE_EQ(ToUs(1500_ns), 1.5);
    EXPECT_DOUBLE_EQ(ToMs(2500_us), 2.5);
    EXPECT_DOUBLE_EQ(ToSec(500_ms), 0.5);
}

TEST(TimeTypes, DoubleBridgeTruncatesTowardZero)
{
    EXPECT_EQ(DurationNs::FromDouble(1.9).ns(), 1u);
    EXPECT_EQ(TimeNs::FromDouble(1.9).ns(), 1u);
    EXPECT_DOUBLE_EQ(DurationNs{7}.ToDouble(), 7.0);
}

TEST(TimeTypes, WrapsModulo64BitsLikeRawMath)
{
    // Subtracting a later point from an earlier one wraps, exactly as
    // the raw uint64 arithmetic it replaced — determinism fingerprints
    // depend on this.
    const TimeNs a{10};
    const TimeNs b{25};
    EXPECT_EQ((a - b).ns(), ~std::uint64_t{0} - 14);
}

TEST(CycleTypes, FrequencyCarryingConversions)
{
    const FreqGhz host{3.5};
    const FreqGhz nic{3.0};

    // The same duration is a different number of cycles per domain.
    EXPECT_EQ(HostCyclesIn(1_us, host).count(), 3'500u);
    EXPECT_EQ(NicCyclesIn(1_us, nic).count(), 3'000u);

    // Round trip: cycles -> ns -> cycles is exact for whole cycles.
    const NicCycles c{9'000};
    EXPECT_EQ(NicCyclesIn(DurationOf(c, nic), nic), c);
    EXPECT_EQ(DurationOf(HostCycles{7}, FreqGhz{3.5}).ns(), 2u);
}

TEST(CycleTypes, FrequencyRatio)
{
    EXPECT_DOUBLE_EQ(FreqGhz{3.0}.RatioTo(FreqGhz{3.5}), 3.0 / 3.5);
    EXPECT_GT(FreqGhz{3.5}, FreqGhz{3.0});
    EXPECT_LT(FreqGhz{2.45}, FreqGhz{3.0});
}

TEST(CycleTypes, CycleArithmeticWithinOneDomain)
{
    HostCycles c{100};
    c += HostCycles{50};
    c -= HostCycles{25};
    EXPECT_EQ(c.count(), 125u);
    EXPECT_EQ((HostCycles{10} + HostCycles{5}).count(), 15u);
    EXPECT_EQ((HostCycles{10} - HostCycles{5}).count(), 5u);
    EXPECT_LT(NicCycles{10}, NicCycles{20});
}

}  // namespace
}  // namespace wave::sim
