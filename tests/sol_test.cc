/**
 * @file
 * Unit tests for the memory-management substrate and the SOL policy:
 * address-space bookkeeping, access-bit harvest semantics, Thompson-
 * sampling scan scheduling, epoch classification, parallel agent
 * scaling (Amdahl behaviour), and hot/cold convergence.
 */
#include <gtest/gtest.h>

#include "machine/machine.h"
#include "memmgr/address_space.h"
#include "sim/simulator.h"
#include "sol/agent.h"
#include "sol/policy.h"

namespace wave::sol {
namespace {

using memmgr::AddressSpace;
using memmgr::Tier;
using sim::Simulator;
using sim::Task;

TEST(AddressSpace, TouchSetsAccessBit)
{
    AddressSpace space(128);
    EXPECT_FALSE(space.Accessed(5));
    space.Touch(5);
    EXPECT_TRUE(space.Accessed(5));
}

TEST(AddressSpace, HarvestCountsAndClears)
{
    AddressSpace space(128);
    space.Touch(0);
    space.Touch(3);
    space.Touch(63);
    space.Touch(64);  // outside the first batch
    EXPECT_EQ(space.HarvestAccessBits(0, 64), 3u);
    EXPECT_FALSE(space.Accessed(0));
    EXPECT_TRUE(space.Accessed(64));
    EXPECT_EQ(space.HarvestAccessBits(0, 64), 0u) << "bits were cleared";
}

TEST(AddressSpace, HarvestExportsBitmap)
{
    AddressSpace space(64);
    space.Touch(1);
    std::vector<std::uint8_t> bitmap;
    space.HarvestAccessBits(0, 64, &bitmap);
    ASSERT_EQ(bitmap.size(), 64u);
    EXPECT_EQ(bitmap[0], 0);
    EXPECT_EQ(bitmap[1], 1);
}

TEST(AddressSpace, TierAccountingTracksMigrations)
{
    AddressSpace space(100);
    EXPECT_EQ(space.FastTierPages(), 100u);
    for (std::size_t p = 0; p < 30; ++p) {
        space.SetTier(p, Tier::kSlow);
    }
    EXPECT_EQ(space.FastTierPages(), 70u);
    EXPECT_EQ(space.FastTierBytes(), 70u * memmgr::kPageSize);
    EXPECT_EQ(space.TierOf(10), Tier::kSlow);
    EXPECT_EQ(space.TierOf(50), Tier::kFast);
}

TEST(AddressSpace, SlowTierTouchesAreCounted)
{
    AddressSpace space(10);
    space.SetTier(0, Tier::kSlow);
    space.Touch(0);
    space.Touch(1);
    EXPECT_EQ(space.SlowTierTouches(), 1u);
    EXPECT_EQ(space.Touches(), 2u);
}

TEST(SolPolicy, ScanRespectsDueTimes)
{
    SolConfig config;
    SolPolicy policy(config, 4);
    EXPECT_TRUE(policy.Due(0, sim::TimeNs{0}));
    EXPECT_TRUE(policy.ScanBatch(0, 5, sim::TimeNs{0}));
    EXPECT_FALSE(policy.Due(0, sim::TimeNs{1'000'000}))
        << "rescheduled into future";
    EXPECT_FALSE(policy.ScanBatch(0, 5, sim::TimeNs{1'000'000}));
    // Due again after at most the slowest period.
    EXPECT_TRUE(policy.Due(0, sim::TimeNs{config.scan_periods.back()}));
}

TEST(SolPolicy, HotBatchesConvergeToFastScans)
{
    SolConfig config;
    SolPolicy policy(config, 1);
    sim::TimeNs now{};
    // Always accessed: posterior mean -> 1, so Thompson samples should
    // pick the fastest period almost always once converged.
    for (int scan = 0; scan < 40; ++scan) {
        policy.ScanBatch(0, 64, now);
        now += config.scan_periods.back();  // ensure due
    }
    EXPECT_GT(policy.HotnessMean(0), 0.9);
    EXPECT_EQ(policy.Batch(0).period_index, 0u);
}

TEST(SolPolicy, ColdBatchesConvergeToSlowScans)
{
    SolConfig config;
    SolPolicy policy(config, 1);
    sim::TimeNs now{};
    for (int scan = 0; scan < 40; ++scan) {
        policy.ScanBatch(0, 0, now);
        now += config.scan_periods.back();
    }
    EXPECT_LT(policy.HotnessMean(0), 0.1);
    EXPECT_EQ(policy.Batch(0).period_index,
              config.scan_periods.size() - 1);
}

TEST(SolPolicy, EpochPlanMovesColdBatchesOut)
{
    SolConfig config;
    SolPolicy policy(config, 10);
    sim::TimeNs now{};
    for (int scan = 0; scan < 20; ++scan) {
        for (std::size_t b = 0; b < 10; ++b) {
            // Batches 0-1 hot, the rest cold.
            policy.ScanBatch(b, b < 2 ? 64 : 0, now);
        }
        now += config.scan_periods.back();
    }
    auto plan = policy.EpochPlan();
    std::size_t to_slow = 0;
    for (const auto& [batch, tier] : plan) {
        EXPECT_GE(batch, 2u) << "hot batch must stay fast";
        EXPECT_EQ(tier, Tier::kSlow);
        ++to_slow;
    }
    EXPECT_EQ(to_slow, 8u);
    // Second epoch with no change: empty plan (idempotent).
    EXPECT_TRUE(policy.EpochPlan().empty());
}

TEST(SolPolicy, ReheatedBatchReturnsToFastTier)
{
    SolConfig config;
    SolPolicy policy(config, 1);
    sim::TimeNs now{};
    for (int scan = 0; scan < 20; ++scan) {
        policy.ScanBatch(0, 0, now);
        now += config.scan_periods.back();
    }
    ASSERT_EQ(policy.EpochPlan().size(), 1u);  // went cold
    for (int scan = 0; scan < 60; ++scan) {
        policy.ScanBatch(0, 64, now);
        now += config.scan_periods.back();
    }
    auto plan = policy.EpochPlan();
    ASSERT_EQ(plan.size(), 1u);
    EXPECT_EQ(plan[0].second, Tier::kFast);
}

struct AgentFixture {
    explicit AgentFixture(std::size_t pages, int cpus, bool offloaded)
        : machine(sim), space(pages)
    {
        SolDeployment deployment;
        for (int i = 0; i < cpus; ++i) {
            deployment.cpus.push_back(offloaded ? &machine.NicCpu(i)
                                                : &machine.HostCpu(i));
        }
        if (offloaded) {
            dma = std::make_unique<pcie::DmaEngine>(sim,
                                                    pcie::PcieConfig{});
            deployment.dma = dma.get();
        }
        agent = std::make_unique<SolAgent>(sim, space, deployment);
    }

    Simulator sim;
    machine::Machine machine;
    AddressSpace space;
    std::unique_ptr<pcie::DmaEngine> dma;
    std::unique_ptr<SolAgent> agent;
};

sim::DurationNs
RunOneIteration(AgentFixture& f)
{
    sim::DurationNs duration = 0;
    f.sim.Spawn([](AgentFixture& fx, sim::DurationNs& d) -> Task<> {
        d = co_await fx.agent->RunIteration();
    }(f, duration));
    f.sim.Run();
    return duration;
}

TEST(SolAgent, IterationScansEverythingInitially)
{
    AgentFixture f(64 * 256, 2, /*offloaded=*/false);
    RunOneIteration(f);
    EXPECT_EQ(f.agent->Stats().batches_scanned, 256u);
}

TEST(SolAgent, MoreCoresShortenIterationsSublinearly)
{
    // Amdahl: 1 -> 4 cores must speed up, but by less than 4x (the
    // merge and harvest are serial).
    const std::size_t pages = 64 * 4096;
    AgentFixture one(pages, 1, false);
    AgentFixture four(pages, 4, false);
    const auto d1 = RunOneIteration(one);
    const auto d4 = RunOneIteration(four);
    EXPECT_LT(d4, d1);
    EXPECT_GT(d4 * 4, d1) << "speedup must be sublinear";
}

TEST(SolAgent, OffloadedIterationIsSlowerButSavesHostCores)
{
    const std::size_t pages = 64 * 4096;
    AgentFixture onhost(pages, 4, false);
    AgentFixture wave(pages, 4, true);
    const auto host_d = RunOneIteration(onhost);
    const auto wave_d = RunOneIteration(wave);
    EXPECT_GT(wave_d, host_d) << "ARM cores are slower";
    EXPECT_LT(wave_d, 3 * host_d) << "but not catastrophically";
}

TEST(SolAgent, ConvergesToHotSetFootprint)
{
    // 25% of the address space is hot; after an epoch the fast tier
    // should hold roughly the hot set.
    const std::size_t pages = 64 * 512;
    AgentFixture f(pages, 2, false);

    // Touch the hot quarter repeatedly while iterating past one epoch.
    f.sim.Spawn([](AgentFixture& fx, std::size_t n_pages) -> Task<> {
        for (;;) {
            for (std::size_t p = 0; p < n_pages / 4; ++p) {
                fx.space.Touch(p);
            }
            co_await fx.sim.Delay(200'000'000);  // every 200 ms
        }
    }(f, pages));
    f.sim.Spawn([](AgentFixture& fx) -> Task<> {
        co_await fx.agent->RunUntil(sim::TimeNs{40'000'000'000ull});  // past 38.4 s
    }(f));
    f.sim.RunUntil(sim::TimeNs{40'000'000'000ull});

    EXPECT_GE(f.agent->Stats().epochs, 1u);
    const double fast_fraction =
        static_cast<double>(f.space.FastTierPages()) /
        static_cast<double>(pages);
    EXPECT_NEAR(fast_fraction, 0.25, 0.08)
        << "fast tier should shrink to ~the hot set";
}

TEST(SolAgent, LaterIterationsScanLessThanTheFirst)
{
    AgentFixture f(64 * 1024, 2, false);
    // No touches at all: everything goes cold and scan periods stretch.
    f.sim.Spawn([](AgentFixture& fx) -> Task<> {
        co_await fx.agent->RunUntil(sim::TimeNs{20'000'000'000ull});
    }(f));
    f.sim.RunUntil(sim::TimeNs{20'000'000'000ull});
    const auto& stats = f.agent->Stats();
    ASSERT_GT(stats.iterations, 5u);
    // If every iteration re-scanned everything we would see
    // iterations * 1024 scans; learned schedules scan far less.
    EXPECT_LT(stats.batches_scanned, stats.iterations * 1024 / 2);
}

}  // namespace
}  // namespace wave::sol
