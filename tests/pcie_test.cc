/**
 * @file
 * Unit tests for the PCIe interconnect model: MMIO PTE-type semantics,
 * software coherence (staleness + clflush), prefetch, write-combining,
 * MSI-X timing, and the DMA engine.
 */
#include <gtest/gtest.h>

#include <cstring>

#include "pcie/config.h"
#include "pcie/dma.h"
#include "pcie/mmio.h"
#include "pcie/msix.h"
#include "sim/simulator.h"

namespace wave::pcie {
namespace {

using sim::Simulator;
using sim::Task;
using sim::TimeNs;

/** Runs a coroutine test body to completion on a fresh simulator. */
void
RunSim(Simulator& sim, Task<> body)
{
    sim.Spawn(std::move(body));
    sim.Run();
}

std::uint64_t
ReadU64(MemoryRegion& region, std::size_t offset)
{
    std::uint64_t v = 0;
    region.ReadRaw(offset, &v, sizeof(v));
    return v;
}

TEST(MemoryRegion, RawReadWriteRoundTrips)
{
    MemoryRegion region(256);
    const std::uint64_t v = 0xDEADBEEFCAFEF00Dull;
    region.WriteRaw(16, &v, sizeof(v));
    EXPECT_EQ(ReadU64(region, 16), v);
}

TEST(Mmio, UncachedReadCostsRoundTripPerWord)
{
    Simulator sim;
    PcieConfig cfg;
    NicDram dram(sim, cfg, 4096);
    HostMmioMapping map(dram, PteType::kUncacheable);

    const std::uint64_t v = 42;
    dram.Backing().WriteRaw(0, &v, sizeof(v));

    RunSim(sim, [](Simulator& s, HostMmioMapping& m,
                   const PcieConfig& c) -> Task<> {
        std::uint64_t out = 0;
        const TimeNs start = s.Now();
        co_await m.Read(0, &out, sizeof(out));
        EXPECT_EQ(out, 42u);
        EXPECT_EQ(s.Now() - start, c.mmio_read_ns);

        // Two words cost two roundtrips.
        std::uint64_t two[2];
        const TimeNs start2 = s.Now();
        co_await m.Read(0, two, sizeof(two));
        EXPECT_EQ(s.Now() - start2, 2 * c.mmio_read_ns);
    }(sim, map, cfg));
    EXPECT_EQ(map.Stats().pcie_reads, 3u);
}

TEST(Mmio, UncachedWriteIsPostedAndEventuallyVisible)
{
    Simulator sim;
    PcieConfig cfg;
    NicDram dram(sim, cfg, 4096);
    HostMmioMapping map(dram, PteType::kUncacheable);

    RunSim(sim, [](Simulator& s, HostMmioMapping& m, NicDram& d,
                   const PcieConfig& c) -> Task<> {
        const std::uint64_t v = 7;
        const TimeNs start = s.Now();
        co_await m.Write(64, &v, sizeof(v));
        // CPU cost is only the posted-write overhead...
        EXPECT_EQ(s.Now() - start, c.mmio_write_ns);
        // ...and the data has NOT landed yet.
        EXPECT_EQ(ReadU64(d.Backing(), 64), 0u);
        co_await s.Delay(c.posted_visibility_ns);
        EXPECT_EQ(ReadU64(d.Backing(), 64), 7u);
    }(sim, map, dram, cfg));
}

TEST(Mmio, PostedWritesArriveInOrder)
{
    Simulator sim;
    PcieConfig cfg;
    NicDram dram(sim, cfg, 4096);
    HostMmioMapping map(dram, PteType::kUncacheable);

    // Producer protocol: write the payload, then the valid flag. The
    // flag must never be visible before the payload.
    RunSim(sim, [](Simulator& s, HostMmioMapping& m, NicDram& d) -> Task<> {
        const std::uint64_t payload = 123;
        const std::uint64_t flag = 1;
        co_await m.Write(0, &payload, sizeof(payload));
        co_await m.Write(8, &flag, sizeof(flag));
        // Poll NIC-visible memory each ns; whenever the flag is set the
        // payload must already be there.
        for (int i = 0; i < 1000; ++i) {
            if (ReadU64(d.Backing(), 8) == 1) {
                EXPECT_EQ(ReadU64(d.Backing(), 0), 123u);
                co_return;
            }
            co_await s.Delay(1);
        }
        ADD_FAILURE() << "flag never became visible";
    }(sim, map, dram));
}

TEST(Mmio, WriteThroughCachesLinesAndAmortizesReads)
{
    Simulator sim;
    PcieConfig cfg;
    NicDram dram(sim, cfg, 4096);
    HostMmioMapping map(dram, PteType::kWriteThrough);

    std::uint64_t vals[8];
    for (int i = 0; i < 8; ++i) vals[i] = 100 + i;
    dram.Backing().WriteRaw(0, vals, sizeof(vals));

    RunSim(sim, [](Simulator& s, HostMmioMapping& m,
                   const PcieConfig& c) -> Task<> {
        std::uint64_t out = 0;
        const TimeNs t0 = s.Now();
        co_await m.Read(0, &out, sizeof(out));  // miss: full roundtrip
        EXPECT_EQ(s.Now() - t0, c.mmio_read_ns);
        EXPECT_EQ(out, 100u);

        // The rest of the 64-byte line is now cached: cheap reads.
        const TimeNs t1 = s.Now();
        for (std::size_t i = 1; i < 8; ++i) {
            co_await m.Read(i * 8, &out, 8);
            EXPECT_EQ(out, 100 + i);
        }
        EXPECT_LE(s.Now() - t1, 7 * c.cache_hit_ns);
    }(sim, map, cfg));
    EXPECT_EQ(map.Stats().pcie_reads, 1u);
    EXPECT_EQ(map.Stats().cache_hits, 7u);
}

TEST(Mmio, WriteThroughCacheGoesStaleWithoutClflush)
{
    Simulator sim;
    PcieConfig cfg;
    NicDram dram(sim, cfg, 4096);
    HostMmioMapping host(dram, PteType::kWriteThrough);
    NicLocalMapping nic(dram, PteType::kWriteBack);

    RunSim(sim, [](HostMmioMapping& h, NicLocalMapping& n) -> Task<> {
        std::uint64_t out = 0;
        co_await h.Read(0, &out, sizeof(out));  // cache the line (value 0)
        EXPECT_EQ(out, 0u);

        // NIC updates the decision slot.
        const std::uint64_t decision = 99;
        co_await n.Write(0, &decision, sizeof(decision));

        // Host re-read WITHOUT clflush: sees the stale cached copy.
        co_await h.Read(0, &out, sizeof(out));
        EXPECT_EQ(out, 0u) << "expected staleness over non-coherent PCIe";
        EXPECT_EQ(h.Stats().stale_reads, 1u);

        // Software coherence: clflush then re-read sees fresh data.
        co_await h.Clflush(0, 8);
        co_await h.Read(0, &out, sizeof(out));
        EXPECT_EQ(out, 99u);
    }(host, nic));
    EXPECT_EQ(host.Stats().clflushes, 1u);
}

TEST(Mmio, CoherentInterconnectInvalidatesInHardware)
{
    Simulator sim;
    PcieConfig cfg = PcieConfig::Upi();
    ASSERT_TRUE(cfg.coherent);
    NicDram dram(sim, cfg, 4096);
    HostMmioMapping host(dram, PteType::kWriteBack);
    NicLocalMapping nic(dram, PteType::kWriteBack);

    RunSim(sim, [](HostMmioMapping& h, NicLocalMapping& n) -> Task<> {
        std::uint64_t out = 0;
        co_await h.Read(0, &out, sizeof(out));
        const std::uint64_t decision = 55;
        co_await n.Write(0, &decision, sizeof(decision));
        // No clflush needed: hardware coherence invalidated the line.
        co_await h.Read(0, &out, sizeof(out));
        EXPECT_EQ(out, 55u);
        EXPECT_EQ(h.Stats().stale_reads, 0u);
    }(host, nic));
}

TEST(Mmio, PrefetchHidesReadLatency)
{
    Simulator sim;
    PcieConfig cfg;
    NicDram dram(sim, cfg, 4096);
    HostMmioMapping map(dram, PteType::kWriteThrough);
    const std::uint64_t v = 31337;
    dram.Backing().WriteRaw(128, &v, sizeof(v));

    RunSim(sim, [](Simulator& s, HostMmioMapping& m,
                   const PcieConfig& c) -> Task<> {
        // Prefetch, then do ~1 us of other work (updating kernel state,
        // sending the message), then demand-read: free.
        m.Prefetch(128, 8);
        co_await s.Delay(1000);
        std::uint64_t out = 0;
        const TimeNs t0 = s.Now();
        co_await m.Read(128, &out, sizeof(out));
        EXPECT_EQ(out, 31337u);
        EXPECT_LE(s.Now() - t0, c.cache_hit_ns);
    }(sim, map, cfg));
    EXPECT_EQ(map.Stats().pcie_reads, 0u);
}

TEST(Mmio, EarlyDemandReadWaitsOnlyForPrefetchRemainder)
{
    Simulator sim;
    PcieConfig cfg;
    NicDram dram(sim, cfg, 4096);
    HostMmioMapping map(dram, PteType::kWriteThrough);

    RunSim(sim, [](Simulator& s, HostMmioMapping& m,
                   const PcieConfig& c) -> Task<> {
        m.Prefetch(0, 8);
        co_await s.Delay(300);  // only part of the fill time has passed
        std::uint64_t out = 0;
        const TimeNs t0 = s.Now();
        co_await m.Read(0, &out, sizeof(out));
        EXPECT_EQ(s.Now() - t0, c.mmio_read_ns - 300);
    }(sim, map, cfg));
    EXPECT_EQ(map.Stats().prefetch_hits, 1u);
}

TEST(Mmio, WriteCombiningBatchesStoresUntilSfence)
{
    Simulator sim;
    PcieConfig cfg;
    NicDram dram(sim, cfg, 4096);
    HostMmioMapping map(dram, PteType::kWriteCombining);

    RunSim(sim, [](Simulator& s, HostMmioMapping& m, NicDram& d,
                   const PcieConfig& c) -> Task<> {
        // Fill most of one line word-by-word: each store is ~wc_store_ns,
        // far below the 50 ns posted-write cost.
        const TimeNs t0 = s.Now();
        for (std::size_t i = 0; i < 6; ++i) {
            const std::uint64_t v = 1000 + i;
            co_await m.Write(i * 8, &v, 8);
        }
        EXPECT_EQ(s.Now() - t0, 6 * c.wc_store_ns);
        // Nothing visible at the NIC before the fence drains the buffer.
        EXPECT_EQ(ReadU64(d.Backing(), 0), 0u);

        co_await m.Sfence();
        co_await s.Delay(c.posted_visibility_ns);
        for (std::size_t i = 0; i < 6; ++i) {
            EXPECT_EQ(ReadU64(d.Backing(), i * 8), 1000 + i);
        }
    }(sim, map, dram, cfg));
    EXPECT_EQ(map.Stats().wc_flushes, 1u);
}

TEST(Mmio, WriteCombiningFlushesWhenLeavingTheLine)
{
    Simulator sim;
    PcieConfig cfg;
    NicDram dram(sim, cfg, 4096);
    HostMmioMapping map(dram, PteType::kWriteCombining);

    RunSim(sim, [](Simulator& s, HostMmioMapping& m, NicDram& d,
                   const PcieConfig& c) -> Task<> {
        const std::uint64_t a = 1;
        const std::uint64_t b = 2;
        co_await m.Write(0, &a, 8);     // line 0 buffered
        co_await m.Write(64, &b, 8);    // line 1: drains line 0
        co_await s.Delay(c.sfence_ns + c.posted_visibility_ns);
        EXPECT_EQ(ReadU64(d.Backing(), 0), 1u);   // line 0 landed
        EXPECT_EQ(ReadU64(d.Backing(), 64), 0u);  // line 1 still buffered
    }(sim, map, dram, cfg));
}

TEST(Mmio, ReadDrainsOwnWriteCombiningBuffer)
{
    Simulator sim;
    PcieConfig cfg;
    NicDram dram(sim, cfg, 4096);
    HostMmioMapping map(dram, PteType::kWriteCombining);

    RunSim(sim, [](HostMmioMapping& m) -> Task<> {
        const std::uint64_t v = 77;
        co_await m.Write(0, &v, 8);
        std::uint64_t out = 0;
        co_await m.Read(0, &out, 8);  // must observe our own store
        EXPECT_EQ(out, 77u);
    }(map));
}

TEST(Mmio, NicUncachedVsWritebackCosts)
{
    Simulator sim;
    PcieConfig cfg;
    NicDram dram(sim, cfg, 4096);
    NicLocalMapping uc(dram, PteType::kUncacheable);
    NicLocalMapping wb(dram, PteType::kWriteBack);

    RunSim(sim, [](Simulator& s, NicLocalMapping& u, NicLocalMapping& w,
                   const PcieConfig& c) -> Task<> {
        std::uint64_t buf[4] = {1, 2, 3, 4};
        TimeNs t0 = s.Now();
        co_await u.Write(0, buf, sizeof(buf));
        EXPECT_EQ(s.Now() - t0, 4 * c.nic_uncached_access_ns);

        t0 = s.Now();
        co_await w.Write(64, buf, sizeof(buf));
        EXPECT_EQ(s.Now() - t0, 4 * c.nic_wb_access_ns);
    }(sim, uc, wb, cfg));
}

TEST(MsiX, EndToEndLatencyMatchesTable2)
{
    Simulator sim;
    PcieConfig cfg;
    MsiXVector vec(sim, cfg);

    TimeNs send_start{};
    TimeNs handler_entry{};

    auto sender = [](Simulator& s, MsiXVector& v, TimeNs& start) -> Task<> {
        start = s.Now();
        const TimeNs t0 = s.Now();
        co_await v.Send();
        // The sender is blocked only for the register-write cost.
        EXPECT_EQ(s.Now() - t0, PcieConfig{}.msix_send_ns);
    };
    auto receiver = [](Simulator& s, MsiXVector& v, TimeNs& entry) -> Task<> {
        co_await v.WaitAndReceive();
        entry = s.Now();
    };
    sim.Spawn(receiver(sim, vec, handler_entry));
    sim.Spawn(sender(sim, vec, send_start));
    sim.Run();

    EXPECT_EQ(handler_entry - send_start, cfg.msix_end_to_end_ns);
}

TEST(MsiX, MaskedVectorLatchesPendingWithoutWaking)
{
    Simulator sim;
    PcieConfig cfg;
    MsiXVector vec(sim, cfg);
    vec.SetMasked(true);

    bool woke = false;
    auto receiver = [](MsiXVector& v, bool& w) -> Task<> {
        co_await v.WaitAndReceive();
        w = true;
    };
    auto sender = [](MsiXVector& v) -> Task<> { co_await v.Send(); };
    sim.Spawn(receiver(vec, woke));
    sim.Spawn(sender(vec));
    sim.RunFor(100'000);

    EXPECT_FALSE(woke);
    EXPECT_TRUE(vec.Pending());
    EXPECT_TRUE(vec.ConsumePending());
    EXPECT_FALSE(vec.Pending());
}

TEST(MsiX, IoctlPathCostsMore)
{
    Simulator sim;
    PcieConfig cfg;
    MsiXVector vec(sim, cfg);

    RunSim(sim, [](Simulator& s, MsiXVector& v,
                   const PcieConfig& c) -> Task<> {
        const TimeNs t0 = s.Now();
        co_await v.Send(MsiXVector::SendPath::kIoctl);
        EXPECT_EQ(s.Now() - t0, c.msix_send_ioctl_ns);
    }(sim, vec, cfg));
}

TEST(Dma, SyncTransferMovesDataWithSetupPlusBandwidthCost)
{
    Simulator sim;
    PcieConfig cfg;
    MemoryRegion host_mem(1 << 20);
    MemoryRegion nic_mem(1 << 20);
    DmaEngine dma(sim, cfg);

    std::vector<std::uint64_t> payload(1024);
    for (std::size_t i = 0; i < payload.size(); ++i) payload[i] = i * 3;
    host_mem.WriteRaw(0, payload.data(), payload.size() * 8);

    RunSim(sim, [](Simulator& s, DmaEngine& d, MemoryRegion& src,
                   MemoryRegion& dst, const PcieConfig& c) -> Task<> {
        const std::size_t bytes = 8192;
        const TimeNs t0 = s.Now();
        co_await d.Transfer(DmaInitiator::kNic, src, 0, dst, 0, bytes);
        const sim::DurationNs expected =
            c.nic_wb_access_ns * c.dma_doorbell_writes + c.dma_setup_ns +
            sim::DurationNs::FromDouble(bytes / c.dma_bytes_per_ns);
        EXPECT_EQ(s.Now() - t0, expected);
    }(sim, dma, host_mem, nic_mem, cfg));

    std::vector<std::uint64_t> out(1024);
    nic_mem.ReadRaw(0, out.data(), out.size() * 8);
    EXPECT_EQ(out, payload);
}

TEST(Dma, AsyncTransferOverlapsWithCompute)
{
    Simulator sim;
    PcieConfig cfg;
    MemoryRegion host_mem(1 << 16);
    MemoryRegion nic_mem(1 << 16);
    DmaEngine dma(sim, cfg);

    RunSim(sim, [](Simulator& s, DmaEngine& d, MemoryRegion& src,
                   MemoryRegion& dst, const PcieConfig& c) -> Task<> {
        const std::size_t bytes = 4096;
        auto completion = co_await d.TransferAsync(DmaInitiator::kNic, src,
                                                   0, dst, 0, bytes);
        const TimeNs after_kick = s.Now();
        EXPECT_FALSE(completion->Done());
        // Overlap compute with the in-flight DMA.
        co_await s.Delay(500);
        co_await completion->Wait();
        const sim::DurationNs wire =
            c.dma_setup_ns +
            sim::DurationNs::FromDouble(bytes / c.dma_bytes_per_ns);
        EXPECT_EQ(s.Now() - after_kick, wire);
    }(sim, dma, host_mem, nic_mem, cfg));
}

TEST(Dma, ChannelSerializesConcurrentTransfers)
{
    Simulator sim;
    PcieConfig cfg;
    MemoryRegion host_mem(1 << 16);
    MemoryRegion nic_mem(1 << 16);
    DmaEngine dma(sim, cfg);

    TimeNs done_a{};
    TimeNs done_b{};
    auto xfer = [](DmaEngine& d, MemoryRegion& src, MemoryRegion& dst,
                   TimeNs& done, Simulator& s) -> Task<> {
        co_await d.Transfer(DmaInitiator::kNic, src, 0, dst, 0, 4096);
        done = s.Now();
    };
    sim.Spawn(xfer(dma, host_mem, nic_mem, done_a, sim));
    sim.Spawn(xfer(dma, host_mem, nic_mem, done_b, sim));
    sim.Run();

    const sim::DurationNs wire =
        cfg.dma_setup_ns +
        sim::DurationNs::FromDouble(4096 / cfg.dma_bytes_per_ns);
    // The second transfer queued behind the first.
    EXPECT_GE(std::max(done_a, done_b) - std::min(done_a, done_b),
              wire - 1);
    EXPECT_EQ(dma.TransfersStarted(), 2u);
    EXPECT_EQ(dma.BytesMoved(), 8192u);
}

// Property sweep: WC batching must always beat UC word stores for any
// batch size that fits one line, and the advantage grows with size.
class WcBatchTest : public ::testing::TestWithParam<int> {};

TEST_P(WcBatchTest, BatchingBeatsUncachedStores)
{
    const int words = GetParam();
    PcieConfig cfg;

    Simulator sim;
    NicDram dram(sim, cfg, 4096);
    HostMmioMapping wc(dram, PteType::kWriteCombining);
    HostMmioMapping uc(dram, PteType::kUncacheable);

    sim::DurationNs wc_cost{};
    sim::DurationNs uc_cost{};
    RunSim(sim, [](Simulator& s, HostMmioMapping& w, HostMmioMapping& u,
                   int n, sim::DurationNs& wcc, sim::DurationNs& ucc) -> Task<> {
        TimeNs t0 = s.Now();
        for (int i = 0; i < n; ++i) {
            const std::uint64_t v = i;
            co_await w.Write(static_cast<std::size_t>(i) * 8, &v, 8);
        }
        co_await w.Sfence();
        wcc = s.Now() - t0;

        t0 = s.Now();
        for (int i = 0; i < n; ++i) {
            const std::uint64_t v = i;
            co_await u.Write(1024 + static_cast<std::size_t>(i) * 8, &v, 8);
        }
        ucc = s.Now() - t0;
    }(sim, wc, uc, words, wc_cost, uc_cost));

    EXPECT_LT(wc_cost, uc_cost);
    const sim::DurationNs expected_wc = words * cfg.wc_store_ns + cfg.sfence_ns;
    EXPECT_EQ(wc_cost, expected_wc);
    EXPECT_EQ(uc_cost, words * cfg.mmio_write_ns);
}

INSTANTIATE_TEST_SUITE_P(Sizes, WcBatchTest, ::testing::Values(2, 4, 8));

}  // namespace
}  // namespace wave::pcie

namespace wave::pcie {
namespace {

TEST(Dma, RemoteNumaPlacementLosesBandwidth)
{
    sim::Simulator sim;
    PcieConfig cfg;
    DmaEngine dma(sim, cfg);
    const std::size_t bytes = 1 << 20;
    const auto local_time = dma.TransferTime(bytes);
    dma.SetNumaLocal(false);
    const auto remote_time = dma.TransferTime(bytes);
    EXPECT_GT(remote_time, local_time);
    // 10-20% effective-bandwidth loss on the wire portion (§5.1).
    const double wire_local =
        (local_time - cfg.dma_setup_ns).ToDouble();
    const double wire_remote =
        (remote_time - cfg.dma_setup_ns).ToDouble();
    EXPECT_NEAR(wire_local / wire_remote, cfg.dma_remote_numa_factor,
                0.01);
}

}  // namespace
}  // namespace wave::pcie

namespace wave::pcie {
namespace {

TEST(Mmio, MultiLineWriteThroughReadCostsOneFetchPerLine)
{
    Simulator sim;
    PcieConfig cfg;
    NicDram dram(sim, cfg, 4096);
    HostMmioMapping map(dram, PteType::kWriteThrough);

    RunSim(sim, [](Simulator& s, HostMmioMapping& m,
                   const PcieConfig& c) -> Task<> {
        std::byte buffer[192];  // spans 3 lines
        const TimeNs t0 = s.Now();
        co_await m.Read(0, buffer, sizeof(buffer));
        EXPECT_EQ(s.Now() - t0, 3 * c.mmio_read_ns);
        // Everything is now cached: the same read is nearly free.
        const TimeNs t1 = s.Now();
        co_await m.Read(0, buffer, sizeof(buffer));
        EXPECT_LE(s.Now() - t1, 3 * c.cache_hit_ns);
    }(sim, map, cfg));
    EXPECT_EQ(map.Stats().pcie_reads, 3u);
    EXPECT_EQ(map.Stats().cache_hits, 3u);
}

TEST(Mmio, WriteThroughStoreUpdatesTheCachedCopy)
{
    Simulator sim;
    PcieConfig cfg;
    NicDram dram(sim, cfg, 4096);
    HostMmioMapping map(dram, PteType::kWriteThrough);

    RunSim(sim, [](HostMmioMapping& m) -> Task<> {
        std::uint64_t out = 0;
        co_await m.Read(0, &out, 8);  // cache the line (0)
        const std::uint64_t v = 321;
        co_await m.Write(0, &v, 8);   // write-through updates the cache
        co_await m.Read(0, &out, 8);  // hit sees our own store
        EXPECT_EQ(out, 321u);
    }(map));
    EXPECT_EQ(map.Stats().pcie_reads, 1u);
}

TEST(Mmio, WriteCombiningMultiLineStoreSplitsByLine)
{
    Simulator sim;
    PcieConfig cfg;
    NicDram dram(sim, cfg, 4096);
    HostMmioMapping map(dram, PteType::kWriteCombining);

    RunSim(sim, [](Simulator& s, HostMmioMapping& m, NicDram& d,
                   const PcieConfig& c) -> Task<> {
        std::byte buffer[128];
        for (std::size_t i = 0; i < sizeof(buffer); ++i) {
            buffer[i] = static_cast<std::byte>(i);
        }
        co_await m.Write(0, buffer, sizeof(buffer));
        co_await m.Sfence();
        co_await s.Delay(c.posted_visibility_ns + c.sfence_ns);
        std::byte check[128];
        d.Backing().ReadRaw(0, check, sizeof(check));
        EXPECT_EQ(std::memcmp(buffer, check, sizeof(buffer)), 0);
    }(sim, map, dram, cfg));
    // Crossing the line boundary drained the first line (one flush),
    // and the final sfence drained the second.
    EXPECT_EQ(map.Stats().wc_flushes, 2u);
}

TEST(Mmio, ClflushOnUncachedLineIsFree)
{
    Simulator sim;
    PcieConfig cfg;
    NicDram dram(sim, cfg, 4096);
    HostMmioMapping map(dram, PteType::kWriteThrough);
    RunSim(sim, [](Simulator& s, HostMmioMapping& m) -> Task<> {
        const TimeNs t0 = s.Now();
        co_await m.Clflush(0, 64);  // nothing cached
        EXPECT_EQ(s.Now(), t0);
    }(sim, map));
    EXPECT_EQ(map.Stats().clflushes, 0u);
}

}  // namespace
}  // namespace wave::pcie
