/**
 * @file
 * Per-PR smoke slice of the fuzz rig (the nightly swarm runs the wide
 * sweep; this must stay well under 30 s).
 *
 * Covers the full pipeline end to end: scenario generation from named
 * seed streams, artifact round-trip, a benign multi-seed sweep under
 * all checker oracles, two-run determinism, and — the rig validating
 * itself — a planted double-commit bug that must be found, shrunk to a
 * minimal schedule, and reproduced from its replay artifact.
 */
#include <gtest/gtest.h>

#include <string>

#include "fuzz/runner.h"
#include "fuzz/scenario.h"
#include "fuzz/shrink.h"
#include "sim/inject.h"

namespace wave::fuzz {
namespace {

using sim::inject::FaultKind;

bool
HasOracle(const RunResult& r, const std::string& oracle)
{
    for (const OracleFailure& f : r.failures) {
        if (f.oracle == oracle) return true;
    }
    return false;
}

TEST(FuzzScenario, GenerationIsDeterministicPerSeed)
{
    const Scenario a = GenerateScenario(11);
    const Scenario b = GenerateScenario(11);
    const Scenario c = GenerateScenario(12);
    EXPECT_EQ(ScenarioToString(a), ScenarioToString(b));
    EXPECT_NE(ScenarioToString(a), ScenarioToString(c));
}

TEST(FuzzScenario, FaultStreamIsIndependentOfWorkloadStream)
{
    // Same seed, different fault budget: the deployment and workload
    // must be identical — only the fault schedule may differ. This is
    // the named-RNG-stream split doing its job.
    GenLimits none;
    none.max_faults = 0;
    GenLimits some;
    some.max_faults = 4;
    Scenario a = GenerateScenario(21, none);
    Scenario b = GenerateScenario(21, some);
    b.faults.clear();
    EXPECT_EQ(ScenarioToString(a), ScenarioToString(b));
}

TEST(FuzzScenario, ArtifactRoundTripsExactly)
{
    GenLimits limits;
    limits.max_faults = 4;
    limits.enable_bug_faults = true;
    // Find a seed whose scenario carries faults so the fault lines are
    // exercised too.
    Scenario s;
    for (std::uint64_t seed = 1; seed < 32; ++seed) {
        s = GenerateScenario(seed, limits);
        if (!s.faults.empty()) break;
    }
    ASSERT_FALSE(s.faults.empty());

    const std::string text = ScenarioToString(s);
    Scenario parsed;
    std::string error;
    ASSERT_TRUE(ScenarioFromString(text, &parsed, &error)) << error;
    EXPECT_EQ(ScenarioToString(parsed), text);

    EXPECT_FALSE(ScenarioFromString("bogus_key 3\n", &parsed, &error));
    EXPECT_NE(error.find("bogus_key"), std::string::npos);
    EXPECT_FALSE(
        ScenarioFromString("fault no-such-kind at=1\n", &parsed, &error));
}

TEST(FuzzSmoke, BenignSweepIsCleanAndDeterministic)
{
    // A handful of seeded scenarios (faults included — they are all
    // recoverable kinds) under every oracle, each run twice so the
    // event-fingerprint determinism oracle is armed.
    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
        const Scenario s = GenerateScenario(seed);
        const RunResult r = RunScenarioTwice(s);
        EXPECT_TRUE(r.Ok()) << "seed " << seed << ":\n" << r.Describe();
        EXPECT_GT(r.completed, 0u) << "seed " << seed;
    }
}

TEST(FuzzSmoke, SeededDoubleCommitBugIsFoundShrunkAndReplayable)
{
    // The rig validating itself: with bug faults enabled, fuzzing must
    // find the planted double-commit defect, the protocol oracle must
    // name it, shrinking must reduce the schedule to <= 3 faults, and
    // the emitted artifact must reproduce the failure bit for bit.
    GenLimits limits;
    limits.max_faults = 3;
    limits.enable_bug_faults = true;

    Scenario failing;
    RunResult failing_result;
    bool found = false;
    for (std::uint64_t seed = 100; seed < 120 && !found; ++seed) {
        const Scenario s = GenerateScenario(seed, limits);
        bool has_bug = false;
        for (const auto& f : s.faults) {
            has_bug |= f.kind == FaultKind::kDoubleCommitBug;
        }
        if (!has_bug) continue;
        RunResult r = RunScenario(s);
        if (r.Ok()) continue;
        failing = s;
        failing_result = std::move(r);
        found = true;
    }
    ASSERT_TRUE(found) << "no seed in [100,120) tripped the planted bug";
    EXPECT_TRUE(HasOracle(failing_result, "protocol"))
        << failing_result.Describe();

    ShrinkOptions opts;
    opts.max_runs = 60;
    const ShrinkOutcome shrunk = Shrink(failing, opts);
    ASSERT_TRUE(shrunk.failing);
    EXPECT_LE(shrunk.scenario.faults.size(), 3u);
    EXPECT_TRUE(HasOracle(shrunk.result, "protocol"))
        << shrunk.result.Describe();

    // Replay fidelity: artifact text -> scenario -> identical run.
    Scenario replayed;
    std::string error;
    ASSERT_TRUE(ScenarioFromString(ScenarioToString(shrunk.scenario),
                                   &replayed, &error))
        << error;
    const RunResult replay = RunScenario(replayed);
    EXPECT_FALSE(replay.Ok());
    EXPECT_EQ(replay.event_hash, shrunk.result.event_hash)
        << "replayed artifact diverged from the shrunk failing run";
}

TEST(FuzzSmoke, InjectedWindowsAreActuallyExercised)
{
    // Hand-built schedule over a known-benign deployment: the counters
    // prove the faults landed (a rig whose faults never fire would pass
    // every sweep vacuously).
    GenLimits none;
    none.max_faults = 0;
    Scenario s = GenerateScenario(3, none);
    ASSERT_TRUE(s.faults.empty());
    const sim::TimeNs mid{s.warmup_ns + s.measure_ns / 4};
    s.faults.push_back({FaultKind::kMsixDelay, mid, 2'000'000, 8'000});
    s.faults.push_back(
        {FaultKind::kCommitFailBurst, mid + 500'000, 500'000, 0});
    s.faults.push_back({FaultKind::kAgentStall, mid + 1'000'000,
                        s.watchdog_timeout_ns / 4, 0});

    const RunResult r = RunScenario(s);
    EXPECT_TRUE(r.Ok()) << r.Describe();
    EXPECT_GT(r.inject.commit_fails, 0u);
    EXPECT_GT(r.inject.actions, 0u);
    // The stall was transient (< timeout), so no fallback.
    EXPECT_FALSE(r.fallback_active);
    EXPECT_EQ(r.watchdog_expiries, 0u);
}

}  // namespace
}  // namespace wave::fuzz
