/**
 * @file
 * Unit tests for the ghOSt substrate: interrupt controller semantics,
 * transport message/decision round trips on both bindings, kernel
 * atomic-commit behaviour (including clean failure on dead threads),
 * preemption via kicks, and wake-while-running handling.
 */
#include <gtest/gtest.h>

#include "ghost/agent.h"
#include "ghost/interrupt.h"
#include "ghost/kernel.h"
#include "ghost/transport.h"
#include "machine/machine.h"
#include "sched/fifo.h"
#include "sim/simulator.h"
#include "wave/runtime.h"

namespace wave::ghost {
namespace {

using sim::Simulator;
using sim::Task;
using sim::TimeNs;
using namespace sim::time_literals;

#define CO_ASSERT(expr)                                     \
    do {                                                    \
        if (!(expr)) {                                      \
            ADD_FAILURE() << "CO_ASSERT failed: " << #expr; \
            co_return;                                      \
        }                                                   \
    } while (0)

TEST(CoreInterrupt, SleepInterruptibleRunsToDeadlineWhenQuiet)
{
    Simulator sim;
    CoreInterrupt irq(sim);
    sim.Spawn([](Simulator& s, CoreInterrupt& i) -> Task<> {
        const auto slept = co_await i.SleepInterruptible(10_us);
        EXPECT_EQ(slept, 10'000u);
        EXPECT_EQ(s.Now().ns(), 10'000u);
    }(sim, irq));
    sim.Run();
}

TEST(CoreInterrupt, RaiseCutsSleepShortAtArrivalTime)
{
    Simulator sim;
    CoreInterrupt irq(sim);
    sim.Schedule(3000, [&] { irq.Raise(); });
    sim.Spawn([](CoreInterrupt& i) -> Task<> {
        const auto slept = co_await i.SleepInterruptible(10_us);
        EXPECT_EQ(slept, 3000u);
        EXPECT_TRUE(i.KickPending());
    }(irq));
    sim.Run();
}

TEST(CoreInterrupt, TickAndKickLatchSeparately)
{
    Simulator sim;
    CoreInterrupt irq(sim);
    irq.RaiseTick();
    EXPECT_TRUE(irq.Pending());
    EXPECT_FALSE(irq.KickPending());
    EXPECT_TRUE(irq.ConsumeTick());
    EXPECT_FALSE(irq.Pending());
    irq.Raise();
    EXPECT_TRUE(irq.ConsumeKick());
    EXPECT_FALSE(irq.ConsumeKick());
}

TEST(CoreInterrupt, WaitForInterruptReturnsOnLatchedRaise)
{
    Simulator sim;
    CoreInterrupt irq(sim);
    irq.Raise();  // raised before the wait: no lost wakeup
    bool woke = false;
    sim.Spawn([](CoreInterrupt& i, bool& w) -> Task<> {
        co_await i.WaitForInterrupt();
        w = true;
    }(irq, woke));
    sim.RunFor(1000);
    EXPECT_TRUE(woke);
}

/** Builds a transport of either binding for parameterized tests. */
struct TransportFixture {
    explicit TransportFixture(bool wave, int cores = 2)
        : machine(sim),
          runtime(sim, machine, pcie::PcieConfig{},
                  api::OptimizationConfig::Full())
    {
        if (wave) {
            transport =
                std::make_unique<WaveSchedTransport>(runtime, cores);
        } else {
            transport = std::make_unique<ShmSchedTransport>(sim, cores);
        }
    }

    Simulator sim;
    machine::Machine machine;
    WaveRuntime runtime;
    std::unique_ptr<SchedTransport> transport;
};

class TransportTest : public ::testing::TestWithParam<bool> {};

TEST_P(TransportTest, MessageRoundTrip)
{
    TransportFixture f(GetParam());
    f.sim.Spawn([](TransportFixture& fx) -> Task<> {
        GhostMessage message{};
        message.type = MsgType::kThreadWakeup;
        message.tid = 42;
        message.core = 1;
        message.payload = 777;
        co_await fx.transport->HostSendMessage(message);
        co_await fx.sim.Delay(2_us);  // let posted writes land

        auto got = co_await fx.transport->AgentPollMessages(8);
        CO_ASSERT(got.size() == 1u);
        EXPECT_EQ(got[0].type, MsgType::kThreadWakeup);
        EXPECT_EQ(got[0].tid, 42);
        EXPECT_EQ(got[0].core, 1);
        EXPECT_EQ(got[0].payload, 777u);
    }(f));
    f.sim.Run();
}

TEST_P(TransportTest, DecisionCommitKicksAndDelivers)
{
    TransportFixture f(GetParam());
    f.sim.Spawn([](TransportFixture& fx) -> Task<> {
        GhostDecision d{};
        d.type = DecisionType::kRunThread;
        d.tid = 7;
        d.core = 1;
        d.slice_ns = 30'000;
        const api::TxnId id = fx.transport->AgentStageDecision(d);
        co_await fx.transport->AgentCommit(1, /*kick=*/true);

        // The kick raises core 1's interrupt line after the wire delay.
        co_await fx.transport->InterruptFor(1).WaitForInterrupt();
        EXPECT_TRUE(fx.transport->InterruptFor(1).ConsumeKick());

        auto pd = co_await fx.transport->HostPollDecision(1, true);
        CO_ASSERT(pd.has_value());
        EXPECT_EQ(pd->txn_id, id);
        EXPECT_EQ(pd->decision.tid, 7);
        EXPECT_EQ(pd->decision.slice_ns, 30'000u);

        // Outcome flows back.
        co_await fx.transport->HostSendOutcome(
            1, {pd->txn_id, api::TxnStatus::kCommitted});
        co_await fx.sim.Delay(2_us);
        auto outs = co_await fx.transport->AgentPollOutcomes(1, 4);
        CO_ASSERT(outs.size() == 1u);
        EXPECT_EQ(outs[0].status, api::TxnStatus::kCommitted);
    }(f));
    f.sim.Run();
}

TEST_P(TransportTest, DecisionsForDifferentCoresAreIndependent)
{
    TransportFixture f(GetParam());
    f.sim.Spawn([](TransportFixture& fx) -> Task<> {
        GhostDecision d0{};
        d0.type = DecisionType::kRunThread;
        d0.tid = 1;
        d0.core = 0;
        GhostDecision d1 = d0;
        d1.tid = 2;
        d1.core = 1;
        fx.transport->AgentStageDecision(d0);
        fx.transport->AgentStageDecision(d1);
        co_await fx.transport->AgentCommit(0, false);
        co_await fx.transport->AgentCommit(1, false);
        co_await fx.sim.Delay(2_us);

        auto p0 = co_await fx.transport->HostPollDecision(0, true);
        auto p1 = co_await fx.transport->HostPollDecision(1, true);
        CO_ASSERT(p0.has_value());
        CO_ASSERT(p1.has_value());
        EXPECT_EQ(p0->decision.tid, 1);
        EXPECT_EQ(p1->decision.tid, 2);
    }(f));
    f.sim.Run();
}

TEST_P(TransportTest, ConcurrentMessageSendersDoNotCorruptTheQueue)
{
    TransportFixture f(GetParam());
    // 20 concurrent host-side senders (the bug class that motivates the
    // transport's internal send serialization).
    for (int i = 0; i < 20; ++i) {
        f.sim.Spawn([](TransportFixture& fx, int id) -> Task<> {
            GhostMessage message{};
            message.type = MsgType::kThreadWakeup;
            message.tid = id;
            co_await fx.transport->HostSendMessage(message);
        }(f, i));
    }
    bool checked = false;
    f.sim.Spawn([](TransportFixture& fx, bool& done) -> Task<> {
        co_await fx.sim.Delay(50_us);
        std::vector<bool> seen(20, false);
        auto got = co_await fx.transport->AgentPollMessages(64);
        CO_ASSERT(got.size() == 20u);
        for (const auto& m : got) {
            CO_ASSERT(m.tid >= 0 && m.tid < 20);
            EXPECT_FALSE(seen[static_cast<std::size_t>(m.tid)])
                << "duplicate tid " << m.tid;
            seen[static_cast<std::size_t>(m.tid)] = true;
        }
        done = true;
    }(f, checked));
    f.sim.Run();
    EXPECT_TRUE(checked);
}

INSTANTIATE_TEST_SUITE_P(Bindings, TransportTest,
                         ::testing::Values(false, true),
                         [](const ::testing::TestParamInfo<bool>& param_info) {
                             return param_info.param ? "Wave" : "OnHostShm";
                         });

/** Thread body burning a fixed amount of service time per wake. */
class FixedWorkBody : public ThreadBody {
  public:
    explicit FixedWorkBody(sim::DurationNs work, int& completions)
        : work_(work), completions_(completions)
    {
    }

    Task<RunStop>
    Run(RunContext& ctx) override
    {
        sim::DurationNs remaining = work_;
        while (remaining > 0) {
            const auto ran =
                co_await ctx.interrupt.SleepInterruptible(remaining);
            remaining -= std::min(ran, remaining);
            if (remaining > 0) co_return RunStop::kPreempted;
        }
        ++completions_;
        co_return RunStop::kBlocked;
    }

  private:
    sim::DurationNs work_;
    int& completions_;
};

/** Full-stack fixture: kernel + agent + FIFO policy on a transport. */
struct StackFixture {
    explicit StackFixture(bool wave, int cores = 2)
        : machine(sim),
          runtime(sim, machine, pcie::PcieConfig{},
                  api::OptimizationConfig::Full())
    {
        if (wave) {
            transport =
                std::make_unique<WaveSchedTransport>(runtime, cores);
        } else {
            transport = std::make_unique<ShmSchedTransport>(sim, cores);
        }
        kernel = std::make_unique<KernelSched>(sim, machine, *transport);
        policy = std::make_shared<sched::FifoPolicy>();
        AgentConfig config;
        for (int i = 0; i < cores; ++i) config.cores.push_back(i);
        config.prestage_min_depth = 2;
        agent = std::make_shared<GhostAgent>(*transport, policy, config);
        if (wave) {
            runtime.StartWaveAgent(agent, 0);
        } else {
            agent_ctx = std::make_unique<AgentContext>(
                sim, machine.NicCpu(0));  // any spare CPU model works
            sim.Spawn(agent->Run(*agent_ctx));
        }
    }

    Simulator sim;
    machine::Machine machine;
    WaveRuntime runtime;
    std::unique_ptr<SchedTransport> transport;
    std::unique_ptr<KernelSched> kernel;
    std::shared_ptr<sched::FifoPolicy> policy;
    std::shared_ptr<GhostAgent> agent;
    std::unique_ptr<AgentContext> agent_ctx;
};

class StackTest : public ::testing::TestWithParam<bool> {};

TEST_P(StackTest, SchedulesARunnableThreadEndToEnd)
{
    StackFixture f(GetParam());
    int completions = 0;
    f.kernel->AddThread(1, std::make_shared<FixedWorkBody>(5_us,
                                                           completions));
    f.kernel->Start({0, 1});
    f.sim.RunFor(1'000'000);  // 1 ms
    EXPECT_EQ(completions, 1);
    EXPECT_GE(f.kernel->Stats().commits_ok, 1u);
}

TEST_P(StackTest, ManyThreadsAllGetScheduled)
{
    StackFixture f(GetParam());
    int completions = 0;
    for (Tid tid = 1; tid <= 20; ++tid) {
        f.kernel->AddThread(
            tid, std::make_shared<FixedWorkBody>(5_us, completions));
    }
    f.kernel->Start({0, 1});
    f.sim.RunFor(5'000'000);
    EXPECT_EQ(completions, 20);
}

TEST_P(StackTest, WakeupReschedulesABlockedThread)
{
    StackFixture f(GetParam());
    int completions = 0;
    f.kernel->AddThread(1, std::make_shared<FixedWorkBody>(5_us,
                                                           completions));
    f.kernel->Start({0, 1});
    f.sim.RunFor(1'000'000);
    ASSERT_EQ(completions, 1);

    f.kernel->WakeThread(1);
    f.sim.RunFor(1'000'000);
    EXPECT_EQ(completions, 2);
}

TEST_P(StackTest, CommitAgainstDeadThreadFailsCleanly)
{
    StackFixture f(GetParam());
    f.kernel->Start({0, 1});
    f.sim.RunFor(100'000);

    // Forge a decision for a thread the kernel never knew. The commit
    // must fail with kFailedStale and host state must stay intact.
    f.sim.Spawn([](StackFixture& fx) -> Task<> {
        GhostDecision d{};
        d.type = DecisionType::kRunThread;
        d.tid = 999;  // unknown thread
        d.core = 0;
        fx.transport->AgentStageDecision(d);
        co_await fx.transport->AgentCommit(0, /*kick=*/true);
    }(f));
    f.sim.RunFor(1'000'000);
    EXPECT_GE(f.kernel->Stats().commits_failed, 1u);
    // The kernel survives: a real thread still schedules fine.
    int completions = 0;
    f.kernel->AddThread(
        1, std::make_shared<FixedWorkBody>(5_us, completions));
    f.sim.RunFor(1'000'000);
    EXPECT_EQ(completions, 1);
}

TEST_P(StackTest, WakeWhileRunningIsNotLost)
{
    StackFixture f(GetParam());
    int completions = 0;
    f.kernel->AddThread(1, std::make_shared<FixedWorkBody>(50_us,
                                                           completions));
    f.kernel->Start({0, 1});
    // Wake the thread while it is mid-run; the wake must convert the
    // eventual block into a re-enqueue, producing a second completion.
    f.sim.Schedule(30'000, [&] { f.kernel->WakeThread(1); });
    f.sim.RunFor(2'000'000);
    EXPECT_EQ(completions, 2);
}

INSTANTIATE_TEST_SUITE_P(Bindings, StackTest,
                         ::testing::Values(false, true),
                         [](const ::testing::TestParamInfo<bool>& param_info) {
                             return param_info.param ? "Wave" : "OnHostShm";
                         });

TEST(Preemption, AgentKickPreemptsLongRunner)
{
    StackFixture f(/*wave=*/true, /*cores=*/1);
    int completions = 0;
    // One long thread hogs the single core; a second thread arrives.
    f.kernel->AddThread(1, std::make_shared<FixedWorkBody>(500_us,
                                                           completions));
    f.kernel->Start({0});
    f.sim.RunFor(50'000);

    f.kernel->AddThread(2, std::make_shared<FixedWorkBody>(5_us,
                                                           completions));
    f.sim.RunFor(50'000);

    // FIFO never preempts: the short thread waits for the long one.
    EXPECT_EQ(f.kernel->Stats().preemptions, 0u);

    // Force a preemption decision directly (policy-independent check
    // of the MSI-X preemption path).
    f.sim.Spawn([](StackFixture& fx) -> Task<> {
        GhostDecision d{};
        d.type = DecisionType::kRunThread;
        d.tid = 2;
        d.core = 0;
        d.preempt = 1;  // explicit preemption intent
        fx.transport->AgentStageDecision(d);
        co_await fx.transport->AgentCommit(0, /*kick=*/true);
    }(f));
    f.sim.RunFor(100'000);
    EXPECT_GE(f.kernel->Stats().preemptions, 1u);
    EXPECT_GE(completions, 1);  // the short thread completed
}

}  // namespace
}  // namespace wave::ghost

namespace wave::ghost {
namespace {

TEST(KernelSched, IdleDecisionCommitsAndLeavesCoreIdle)
{
    // An explicit kIdle decision commits successfully (outcome
    // kCommitted) but schedules nothing.
    StackFixture f(/*wave=*/true, /*cores=*/1);
    f.kernel->Start({0});
    f.sim.RunFor(100'000);

    f.sim.Spawn([](StackFixture& fx) -> sim::Task<> {
        GhostDecision d{};
        d.type = DecisionType::kIdle;
        d.core = 0;
        fx.transport->AgentStageDecision(d);
        co_await fx.transport->AgentCommit(0, /*kick=*/true);
    }(f));
    f.sim.RunFor(1'000'000);
    EXPECT_GE(f.kernel->Stats().commits_ok, 1u);
    EXPECT_EQ(f.kernel->Stats().commits_failed, 0u);
}

TEST(KernelSched, PollIdleModeSchedulesWithoutKicks)
{
    // Kickless agent + polling kernel still makes progress.
    Simulator sim;
    machine::Machine machine(sim);
    WaveRuntime runtime(sim, machine, pcie::PcieConfig{},
                        api::OptimizationConfig::Full());
    WaveSchedTransport transport(runtime, 2);
    KernelOptions options;
    options.poll_idle = true;
    KernelSched kernel(sim, machine, transport, GhostCosts{}, options);

    auto policy = std::make_shared<sched::FifoPolicy>();
    AgentConfig cfg;
    cfg.cores = {0, 1};
    cfg.use_kicks = false;
    auto agent = std::make_shared<GhostAgent>(transport, policy, cfg);
    runtime.StartWaveAgent(agent, 0);

    int completions = 0;
    for (Tid tid = 1; tid <= 10; ++tid) {
        kernel.AddThread(tid, std::make_shared<FixedWorkBody>(
                                  5'000, completions));
    }
    kernel.Start({0, 1});
    sim.RunFor(3'000'000);
    EXPECT_EQ(completions, 10);
    EXPECT_EQ(agent->Stats().kicks, 0u) << "no MSI-X in polling mode";
    EXPECT_GT(kernel.Stats().idle_polls, 0u);
}

}  // namespace
}  // namespace wave::ghost
