/**
 * @file
 * Unit tests for the Floem-style queues: generation-flag protocol,
 * wraparound, flow control, lazy head sync, WC batching on the send
 * path, WT caching + clflush on the receive path, and DMA queues in
 * sync and async modes.
 */
#include <gtest/gtest.h>

#include <cstring>

#include "channel/bytes.h"
#include "channel/dma_queue.h"
#include "channel/mmio_queue.h"
#include "pcie/config.h"
#include "sim/simulator.h"

namespace wave::channel {
namespace {

/** ASSERT_* returns from the function, which is illegal in a coroutine;
 * CO_ASSERT registers the failure and co_returns instead. */
#define CO_ASSERT(expr)                      \
    do {                                     \
        if (!(expr)) {                       \
            ADD_FAILURE() << "CO_ASSERT failed: " << #expr; \
            co_return;                       \
        }                                    \
    } while (0)


using pcie::DmaEngine;
using pcie::DmaInitiator;
using pcie::NicDram;
using pcie::PcieConfig;
using pcie::PteType;
using sim::Simulator;
using sim::Task;
using sim::DurationNs;
using sim::TimeNs;

Bytes
Msg(std::uint64_t v, std::size_t payload_size = 48)
{
    Bytes b(payload_size);
    std::memcpy(b.data(), &v, sizeof(v));
    return b;
}

std::uint64_t
MsgValue(const Bytes& b)
{
    std::uint64_t v = 0;
    std::memcpy(&v, b.data(), sizeof(v));
    return v;
}

std::vector<Bytes>
One(Bytes message)
{
    std::vector<Bytes> batch;
    batch.push_back(std::move(message));
    return batch;
}

struct HostToNicFixture {
    explicit HostToNicFixture(const QueueConfig& qc,
                              PteType write_type = PteType::kWriteCombining,
                              PteType nic_type = PteType::kWriteBack)
        : dram(sim, PcieConfig{}, 1 << 20),
          queue(dram, 0, qc),
          producer(queue, write_type, PteType::kWriteThrough),
          consumer(queue, nic_type)
    {
    }

    Simulator sim;
    NicDram dram;
    MmioQueue queue;
    HostProducer producer;
    NicConsumer consumer;
};

TEST(Layout, SlotsAreLineAlignedAndSized)
{
    RingLayout layout(QueueConfig{.capacity = 64, .payload_size = 48});
    EXPECT_EQ(layout.SlotSize(), 64u);  // 48 payload + 8 flag -> one line
    EXPECT_EQ(layout.PayloadOffset(1), 64u);
    EXPECT_EQ(layout.FlagOffset(0), 48u);
    EXPECT_EQ(layout.BytesNeeded(), 64u * 64 + 64);
}

TEST(Layout, GenerationDistinguishesLaps)
{
    RingLayout layout(QueueConfig{.capacity = 8, .payload_size = 8});
    EXPECT_EQ(layout.GenerationOf(0), 1u);
    EXPECT_EQ(layout.GenerationOf(7), 1u);
    EXPECT_EQ(layout.GenerationOf(8), 2u);
    EXPECT_EQ(layout.SlotIndex(8), 0u);
    EXPECT_EQ(layout.SlotIndex(13), 5u);
}

TEST(MmioQueueH2N, DeliversMessagesInOrder)
{
    HostToNicFixture f(QueueConfig{.capacity = 16, .payload_size = 48});

    f.sim.Spawn([](HostToNicFixture& fx) -> Task<> {
        std::vector<Bytes> batch;
        for (std::uint64_t i = 0; i < 5; ++i) batch.push_back(Msg(i));
        const std::size_t sent = co_await fx.producer.Send(batch);
        EXPECT_EQ(sent, 5u);

        // Wait for posted writes to land, then poll.
        co_await fx.sim.Delay(1000);
        for (std::uint64_t i = 0; i < 5; ++i) {
            auto message = co_await fx.consumer.Poll();
            CO_ASSERT(message.has_value());
            EXPECT_EQ(MsgValue(*message), i);
        }
        EXPECT_FALSE((co_await fx.consumer.Poll()).has_value());
    }(f));
    f.sim.Run();
}

TEST(MmioQueueH2N, ConsumerNeverSeesFlagBeforePayload)
{
    HostToNicFixture f(QueueConfig{.capacity = 16, .payload_size = 48});

    // Concurrent producer and polling consumer; every message the
    // consumer accepts must carry the right payload even while posted
    // writes are still landing.
    auto producer_proc = [](HostToNicFixture& fx) -> Task<> {
        for (std::uint64_t i = 0; i < 50; ++i) {
            co_await fx.producer.Send(One(Msg(i + 1)));
            co_await fx.sim.Delay(37);
        }
    };
    auto consumer_proc = [](HostToNicFixture& fx, int& received) -> Task<> {
        std::uint64_t expected = 1;
        while (expected <= 50) {
            auto message = co_await fx.consumer.Poll();
            if (message) {
                EXPECT_EQ(MsgValue(*message), expected)
                    << "payload/flag ordering violated";
                ++expected;
                ++received;
            } else {
                co_await fx.sim.Delay(13);
            }
        }
    };
    int received = 0;
    f.sim.Spawn(producer_proc(f));
    f.sim.Spawn(consumer_proc(f, received));
    f.sim.Run();
    EXPECT_EQ(received, 50);
}

TEST(MmioQueueH2N, RingFillsWithoutConsumerProgress)
{
    HostToNicFixture f(QueueConfig{.capacity = 8, .payload_size = 48});

    f.sim.Spawn([](HostToNicFixture& fx) -> Task<> {
        std::vector<Bytes> batch;
        for (std::uint64_t i = 0; i < 12; ++i) batch.push_back(Msg(i));
        const std::size_t sent = co_await fx.producer.Send(batch);
        EXPECT_EQ(sent, 8u) << "only capacity slots fit";
    }(f));
    f.sim.Run();
}

TEST(MmioQueueH2N, LazyHeadSyncUnblocksProducerAfterConsumption)
{
    HostToNicFixture f(QueueConfig{
        .capacity = 8, .payload_size = 48, .sync_interval = 4});

    f.sim.Spawn([](HostToNicFixture& fx) -> Task<> {
        std::vector<Bytes> batch;
        for (std::uint64_t i = 0; i < 8; ++i) batch.push_back(Msg(i));
        EXPECT_EQ(co_await fx.producer.Send(batch), 8u);
        co_await fx.sim.Delay(1000);

        // Consume 6; the counter syncs at 4 (sync_interval).
        for (int i = 0; i < 6; ++i) {
            CO_ASSERT((co_await fx.consumer.Poll()).has_value());
        }
        // Producer can now reuse the advertised slots.
        std::vector<Bytes> more;
        for (std::uint64_t i = 8; i < 12; ++i) more.push_back(Msg(i));
        EXPECT_EQ(co_await fx.producer.Send(more), 4u);
    }(f));
    f.sim.Run();
}

TEST(MmioQueueH2N, WrapsAcrossManyLaps)
{
    HostToNicFixture f(QueueConfig{
        .capacity = 4, .payload_size = 48, .sync_interval = 1});

    f.sim.Spawn([](HostToNicFixture& fx) -> Task<> {
        for (std::uint64_t i = 0; i < 100; ++i) {
            std::size_t sent = 0;
            while (sent == 0) {
                sent = co_await fx.producer.Send(One(Msg(i)));
                if (sent == 0) co_await fx.sim.Delay(100);
            }
            co_await fx.sim.Delay(500);
            auto message = co_await fx.consumer.Poll();
            CO_ASSERT(message.has_value());
            EXPECT_EQ(MsgValue(*message), i);
        }
    }(f));
    f.sim.Run();
}

TEST(MmioQueueH2N, WcBatchingIsCheaperThanUncachedSends)
{
    QueueConfig qc{.capacity = 64, .payload_size = 48};
    DurationNs wc_cost{};
    DurationNs uc_cost{};

    {
        HostToNicFixture f(qc, PteType::kWriteCombining);
        f.sim.Spawn([](HostToNicFixture& fx, DurationNs& cost) -> Task<> {
            std::vector<Bytes> batch;
            for (std::uint64_t i = 0; i < 8; ++i) batch.push_back(Msg(i));
            const TimeNs t0 = fx.sim.Now();
            co_await fx.producer.Send(batch);
            cost = fx.sim.Now() - t0;
        }(f, wc_cost));
        f.sim.Run();
    }
    {
        HostToNicFixture f(qc, PteType::kUncacheable);
        f.sim.Spawn([](HostToNicFixture& fx, DurationNs& cost) -> Task<> {
            std::vector<Bytes> batch;
            for (std::uint64_t i = 0; i < 8; ++i) batch.push_back(Msg(i));
            const TimeNs t0 = fx.sim.Now();
            co_await fx.producer.Send(batch);
            cost = fx.sim.Now() - t0;
        }(f, uc_cost));
        f.sim.Run();
    }
    EXPECT_LT(wc_cost * 3, uc_cost)
        << "write-combining should be several times cheaper";
}

struct NicToHostFixture {
    explicit NicToHostFixture(const QueueConfig& qc,
                              PteType nic_type = PteType::kWriteBack,
                              PteType host_read = PteType::kWriteThrough)
        : dram(sim, PcieConfig{}, 1 << 20),
          queue(dram, 0, qc),
          producer(queue, nic_type),
          consumer(queue, host_read, PteType::kWriteCombining)
    {
    }

    Simulator sim;
    NicDram dram;
    MmioQueue queue;
    NicProducer producer;
    HostConsumer consumer;
};

TEST(MmioQueueN2H, DeliversDecisionsWithFlushProtocol)
{
    NicToHostFixture f(QueueConfig{.capacity = 16, .payload_size = 48});

    f.sim.Spawn([](NicToHostFixture& fx) -> Task<> {
        EXPECT_TRUE(co_await fx.producer.Send(Msg(11)));
        EXPECT_TRUE(co_await fx.producer.Send(Msg(22)));

        auto first = co_await fx.consumer.Poll(/*flush_first=*/true);
        CO_ASSERT(first.has_value());
        EXPECT_EQ(MsgValue(*first), 11u);

        auto second = co_await fx.consumer.Poll(true);
        CO_ASSERT(second.has_value());
        EXPECT_EQ(MsgValue(*second), 22u);

        EXPECT_FALSE((co_await fx.consumer.Poll(true)).has_value());
    }(f));
    f.sim.Run();
}

TEST(MmioQueueN2H, StaleCacheHidesNewDecisionWithoutFlush)
{
    NicToHostFixture f(QueueConfig{.capacity = 16, .payload_size = 48});

    f.sim.Spawn([](NicToHostFixture& fx) -> Task<> {
        // Host polls the empty queue: caches the (invalid) slot line.
        EXPECT_FALSE((co_await fx.consumer.Poll(false)).has_value());

        // NIC publishes a decision.
        EXPECT_TRUE(co_await fx.producer.Send(Msg(33)));

        // Host polls again WITHOUT flushing: stale line, still empty.
        EXPECT_FALSE((co_await fx.consumer.Poll(false)).has_value());

        // With the software-coherence flush the decision appears.
        auto decision = co_await fx.consumer.Poll(true);
        CO_ASSERT(decision.has_value());
        EXPECT_EQ(MsgValue(*decision), 33u);
    }(f));
    f.sim.Run();
}

TEST(MmioQueueN2H, PrefetchMakesDecisionReadNearlyFree)
{
    NicToHostFixture f(QueueConfig{.capacity = 16, .payload_size = 48});
    PcieConfig cfg;

    f.sim.Spawn([](NicToHostFixture& fx, const PcieConfig& c) -> Task<> {
        EXPECT_TRUE(co_await fx.producer.Send(Msg(44)));

        // Prefetch the prestaged decision, overlap ~1 us of other work,
        // then read: should be a cache hit.
        co_await fx.consumer.PrefetchNext();
        co_await fx.sim.Delay(1000);
        const TimeNs t0 = fx.sim.Now();
        auto decision = co_await fx.consumer.Poll(false);
        const DurationNs cost = fx.sim.Now() - t0;
        CO_ASSERT(decision.has_value());
        EXPECT_EQ(MsgValue(*decision), 44u);
        EXPECT_LE(cost, c.cache_hit_ns);
    }(f, cfg));
    f.sim.Run();
}

TEST(MmioQueueN2H, ProducerStopsWhenHostLags)
{
    NicToHostFixture f(QueueConfig{
        .capacity = 4, .payload_size = 48, .sync_interval = 1});

    f.sim.Spawn([](NicToHostFixture& fx) -> Task<> {
        for (std::uint64_t i = 0; i < 4; ++i) {
            EXPECT_TRUE(co_await fx.producer.Send(Msg(i)));
        }
        EXPECT_FALSE(co_await fx.producer.Send(Msg(99)));

        // Host consumes one and advertises (sync_interval = 1)...
        CO_ASSERT((co_await fx.consumer.Poll(true)).has_value());
        co_await fx.sim.Delay(1000);  // counter posted write lands

        // ...which frees one slot.
        EXPECT_TRUE(co_await fx.producer.Send(Msg(4)));
        EXPECT_FALSE(co_await fx.producer.Send(Msg(99)));
    }(f));
    f.sim.Run();
}

TEST(Bytes, PodRoundTrip)
{
    struct Message {
        std::uint32_t kind;
        std::uint64_t value;
    };
    const Message in{7, 0xABCDEF};
    const Bytes wire = ToBytes(in, 48);
    EXPECT_EQ(wire.size(), 48u);
    const auto out = FromBytes<Message>(wire);
    EXPECT_EQ(out.kind, 7u);
    EXPECT_EQ(out.value, 0xABCDEFull);
}

struct DmaFixture {
    explicit DmaFixture(const QueueConfig& qc, DmaInitiator initiator)
        : dma(sim, PcieConfig{}), queue(sim, dma, initiator, qc)
    {
    }

    Simulator sim;
    DmaEngine dma;
    DmaQueue queue;
};

TEST(DmaQueue, SyncSendDeliversBatch)
{
    DmaFixture f(QueueConfig{.capacity = 64, .payload_size = 48},
                 DmaInitiator::kNic);

    f.sim.Spawn([](DmaFixture& fx) -> Task<> {
        std::vector<Bytes> batch;
        for (std::uint64_t i = 0; i < 10; ++i) batch.push_back(Msg(i));
        EXPECT_EQ(co_await fx.queue.Send(batch, /*sync=*/true), 10u);

        // Sync mode: messages are consumable immediately on return.
        auto out = co_await fx.queue.PollBatch(100);
        CO_ASSERT(out.size() == 10u);
        for (std::uint64_t i = 0; i < 10; ++i) {
            EXPECT_EQ(MsgValue(out[i]), i);
        }
    }(f));
    f.sim.Run();
}

TEST(DmaQueue, AsyncSendReturnsBeforeDataLands)
{
    DmaFixture f(QueueConfig{.capacity = 64, .payload_size = 48},
                 DmaInitiator::kNic);
    PcieConfig cfg;

    f.sim.Spawn([](DmaFixture& fx, const PcieConfig& c) -> Task<> {
        const TimeNs t0 = fx.sim.Now();
        co_await fx.queue.Send(One(Msg(5)), /*sync=*/false);
        const DurationNs kick_cost = fx.sim.Now() - t0;
        EXPECT_LT(kick_cost, c.dma_setup_ns)
            << "async send should return after the doorbell";

        // Not yet visible...
        EXPECT_FALSE((co_await fx.queue.Poll()).has_value());
        // ...but lands after the transfer time.
        co_await fx.sim.Delay(c.dma_setup_ns + 1000);
        auto message = co_await fx.queue.Poll();
        CO_ASSERT(message.has_value());
        EXPECT_EQ(MsgValue(*message), 5u);
    }(f, cfg));
    f.sim.Run();
}

TEST(DmaQueue, LargeBatchAmortizesSetup)
{
    // Per-message cost of a 64-message batch must be far below the
    // per-message cost of 64 single-message sends (Floem/iPipe insight).
    QueueConfig qc{.capacity = 256, .payload_size = 48,
                   .sync_interval = 64};
    DurationNs batched{};
    DurationNs singles{};
    {
        DmaFixture f(qc, DmaInitiator::kNic);
        f.sim.Spawn([](DmaFixture& fx, DurationNs& cost) -> Task<> {
            std::vector<Bytes> batch;
            for (std::uint64_t i = 0; i < 64; ++i) batch.push_back(Msg(i));
            const TimeNs t0 = fx.sim.Now();
            co_await fx.queue.Send(batch, true);
            cost = fx.sim.Now() - t0;
        }(f, batched));
        f.sim.Run();
    }
    {
        DmaFixture f(qc, DmaInitiator::kNic);
        f.sim.Spawn([](DmaFixture& fx, DurationNs& cost) -> Task<> {
            const TimeNs t0 = fx.sim.Now();
            for (std::uint64_t i = 0; i < 64; ++i) {
                co_await fx.queue.Send(One(Msg(i)), true);
            }
            cost = fx.sim.Now() - t0;
        }(f, singles));
        f.sim.Run();
    }
    EXPECT_LT(batched * 5, singles);
}

TEST(DmaQueue, FlowControlAcrossWrap)
{
    DmaFixture f(QueueConfig{.capacity = 8, .payload_size = 48,
                             .sync_interval = 2},
                 DmaInitiator::kNic);

    f.sim.Spawn([](DmaFixture& fx) -> Task<> {
        std::uint64_t next_send = 0;
        std::uint64_t next_recv = 0;
        for (int round = 0; round < 20; ++round) {
            std::vector<Bytes> batch;
            for (int i = 0; i < 6; ++i) batch.push_back(Msg(next_send + i));
            const std::size_t sent = co_await fx.queue.Send(batch, true);
            next_send += sent;
            auto got = co_await fx.queue.PollBatch(100);
            for (const auto& message : got) {
                EXPECT_EQ(MsgValue(message), next_recv);
                ++next_recv;
            }
            co_await fx.sim.Delay(5000);  // let counter DMA land
        }
        EXPECT_EQ(next_recv, next_send);
        EXPECT_GT(next_recv, 8u * 8) << "must have wrapped many times";
    }(f));
    f.sim.Run();
}

}  // namespace
}  // namespace wave::channel
