/**
 * @file
 * Determinism and reproducibility properties of the whole stack.
 *
 * The simulator guarantees FIFO ordering at equal timestamps and all
 * randomness flows through seeded RNGs, so an experiment run twice
 * with the same configuration must produce bit-identical results —
 * the property that makes every number in EXPERIMENTS.md reproducible
 * and every bug report replayable.
 */
#include <gtest/gtest.h>

#include "rpc/rpc_experiment.h"
#include "workload/sched_experiment.h"

namespace wave {
namespace {

TEST(Determinism, SchedExperimentIsBitReproducible)
{
    workload::SchedExperimentConfig cfg;
    cfg.deployment = workload::Deployment::kWave;
    cfg.worker_cores = 8;
    cfg.num_workers = 32;
    cfg.offered_rps = 400'000;
    cfg.warmup_ns = 10'000'000;
    cfg.measure_ns = 50'000'000;
    cfg.seed = 777;

    const auto a = workload::RunSchedExperiment(cfg);
    const auto b = workload::RunSchedExperiment(cfg);
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.get_p50, b.get_p50);
    EXPECT_EQ(a.get_p99, b.get_p99);
    EXPECT_EQ(a.ctx_switch_p50, b.ctx_switch_p50);
    EXPECT_EQ(a.agent_decisions, b.agent_decisions);
    EXPECT_EQ(a.prestage_hits, b.prestage_hits);
    EXPECT_EQ(a.commits_failed, b.commits_failed);
}

TEST(Determinism, DifferentSeedsProduceDifferentTraces)
{
    workload::SchedExperimentConfig cfg;
    cfg.deployment = workload::Deployment::kWave;
    cfg.worker_cores = 8;
    cfg.num_workers = 32;
    cfg.offered_rps = 400'000;
    cfg.warmup_ns = 10'000'000;
    cfg.measure_ns = 50'000'000;

    cfg.seed = 1;
    const auto a = workload::RunSchedExperiment(cfg);
    cfg.seed = 2;
    const auto b = workload::RunSchedExperiment(cfg);
    // Same distribution, different arrivals: counts differ slightly.
    EXPECT_NE(a.completed, b.completed);
    EXPECT_NEAR(static_cast<double>(a.completed),
                static_cast<double>(b.completed),
                0.05 * static_cast<double>(a.completed));
}

TEST(Determinism, RpcExperimentIsBitReproducible)
{
    rpc::RpcExperimentConfig cfg;
    cfg.scenario = rpc::RpcScenario::kOffloadAll;
    cfg.rocksdb_cores = 8;
    cfg.num_workers = 32;
    cfg.offered_rps = 60'000;
    cfg.warmup_ns = 10'000'000;
    cfg.measure_ns = 60'000'000;
    cfg.seed = 99;

    const auto a = rpc::RunRpcExperiment(cfg);
    const auto b = rpc::RunRpcExperiment(cfg);
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.get_p99, b.get_p99);
    EXPECT_EQ(a.preemptions, b.preemptions);
    EXPECT_EQ(a.steered, b.steered);
}

}  // namespace
}  // namespace wave
