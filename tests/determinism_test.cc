/**
 * @file
 * Determinism and reproducibility properties of the whole stack.
 *
 * The simulator guarantees FIFO ordering at equal timestamps and all
 * randomness flows through seeded RNGs, so an experiment run twice
 * with the same configuration must produce bit-identical results —
 * the property that makes every number in EXPERIMENTS.md reproducible
 * and every bug report replayable.
 *
 * Beyond result equality, the simulator's event-stream fingerprint
 * (Simulator::EventHash, folded over every executed event) must also
 * match across runs — a far stricter check that catches schedules that
 * happen to produce the same aggregate numbers by luck — and must be
 * insensitive to the insertion order of keyed same-timestamp events.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include "fuzz/runner.h"
#include "fuzz/scenario.h"
#include "ghost/agent.h"
#include "ghost/kernel.h"
#include "ghost/transport.h"
#include "machine/machine.h"
#include "machine/turbo.h"
#include "memmgr/address_space.h"
#include "offload/sweep.h"
#include "pcie/msix.h"
#include "rpc/rpc_experiment.h"
#include "sched/vm_policy.h"
#include "sim/inject.h"
#include "sim/random.h"
#include "sim/simulator.h"
#include "sol/agent.h"
#include "wave/runtime.h"
#include "workload/busy_loop.h"
#include "workload/sched_experiment.h"

namespace wave {
namespace {

TEST(Determinism, SchedExperimentIsBitReproducible)
{
    workload::SchedExperimentConfig cfg;
    cfg.deployment = workload::Deployment::kWave;
    cfg.worker_cores = 8;
    cfg.num_workers = 32;
    cfg.offered_rps = 400'000;
    cfg.warmup_ns = 10'000'000;
    cfg.measure_ns = 50'000'000;
    cfg.seed = 777;

    const auto a = workload::RunSchedExperiment(cfg);
    const auto b = workload::RunSchedExperiment(cfg);
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.get_p50, b.get_p50);
    EXPECT_EQ(a.get_p99, b.get_p99);
    EXPECT_EQ(a.ctx_switch_p50, b.ctx_switch_p50);
    EXPECT_EQ(a.agent_decisions, b.agent_decisions);
    EXPECT_EQ(a.prestage_hits, b.prestage_hits);
    EXPECT_EQ(a.commits_failed, b.commits_failed);
}

TEST(Determinism, DifferentSeedsProduceDifferentTraces)
{
    workload::SchedExperimentConfig cfg;
    cfg.deployment = workload::Deployment::kWave;
    cfg.worker_cores = 8;
    cfg.num_workers = 32;
    cfg.offered_rps = 400'000;
    cfg.warmup_ns = 10'000'000;
    cfg.measure_ns = 50'000'000;

    cfg.seed = 1;
    const auto a = workload::RunSchedExperiment(cfg);
    cfg.seed = 2;
    const auto b = workload::RunSchedExperiment(cfg);
    // Same distribution, different arrivals: counts differ slightly.
    EXPECT_NE(a.completed, b.completed);
    EXPECT_NEAR(static_cast<double>(a.completed),
                static_cast<double>(b.completed),
                0.05 * static_cast<double>(a.completed));
}

TEST(Determinism, EventHashMatchesAcrossIdenticalRuns)
{
    auto run = [] {
        sim::Simulator sim;
        std::uint64_t ticks = 0;
        // A self-rescheduling process plus a burst of one-shot events:
        // enough queue churn that an ordering regression would perturb
        // the executed stream, not just the final counters.
        std::function<void()> tick = [&] {
            if (++ticks < 200) sim.Schedule(17, tick);
        };
        sim.Schedule(0, tick);
        for (std::uint64_t i = 0; i < 100; ++i) {
            sim.Schedule(i * 13 % 97, [] {});
        }
        sim.Run();
        return sim.EventHash();
    };

    const std::uint64_t a = run();
    const std::uint64_t b = run();
    EXPECT_EQ(a, b);
}

TEST(Determinism, EventHashInsensitiveToShuffledKeyedTieInsertion)
{
    // Components whose schedule-call order is itself nondeterministic
    // (e.g. iterating an unordered registry) must schedule with explicit
    // tie-break keys. The fingerprint then folds the key instead of the
    // insertion sequence number, so any insertion order of the same
    // keyed same-timestamp event set yields the same executed stream.
    auto run = [](std::vector<std::uint64_t> insertion_order) {
        sim::Simulator sim;
        std::vector<std::uint64_t> executed;
        for (std::uint64_t key : insertion_order) {
            // Three colliding timestamps, eight keyed events each.
            sim.ScheduleAtKeyed(sim::TimeNs{100 * (1 + key % 3)}, key,
                                [&executed, key] {
                                    executed.push_back(key);
                                });
        }
        sim.Run();
        return std::pair{sim.EventHash(), executed};
    };

    std::vector<std::uint64_t> order(24);
    for (std::uint64_t i = 0; i < order.size(); ++i) order[i] = i;
    const auto a = run(order);

    std::reverse(order.begin(), order.end());
    const auto b = run(order);

    // Interleave: odd keys first, then even.
    std::vector<std::uint64_t> interleaved;
    for (std::uint64_t i = 1; i < 24; i += 2) interleaved.push_back(i);
    for (std::uint64_t i = 0; i < 24; i += 2) interleaved.push_back(i);
    const auto c = run(interleaved);

    EXPECT_EQ(a.first, b.first);
    EXPECT_EQ(a.first, c.first);
    EXPECT_EQ(a.second, b.second);
    EXPECT_EQ(a.second, c.second);
}

TEST(Determinism, UnkeyedEventsKeepFifoOrderAndDistinctHashes)
{
    // Unkeyed same-timestamp events execute in insertion (FIFO) order —
    // the legacy guarantee — so shuffling THEIR insertion changes the
    // executed stream, and the fingerprint honestly says so.
    auto run = [](bool swapped) {
        sim::Simulator sim;
        std::vector<int> executed;
        if (swapped) {
            sim.ScheduleAt(sim::TimeNs{50}, [&executed] { executed.push_back(2); });
            sim.ScheduleAt(sim::TimeNs{50}, [&executed] { executed.push_back(1); });
        } else {
            sim.ScheduleAt(sim::TimeNs{50}, [&executed] { executed.push_back(1); });
            sim.ScheduleAt(sim::TimeNs{50}, [&executed] { executed.push_back(2); });
        }
        sim.Run();
        return std::pair{sim.EventHash(), executed};
    };

    const auto a = run(false);
    const auto b = run(true);
    EXPECT_EQ(a.second, (std::vector<int>{1, 2}));
    EXPECT_EQ(b.second, (std::vector<int>{2, 1}));
    // Same (when, seq) stream either way, so the coarse fingerprint
    // matches; the tie AUDIT is what flags this pattern for review.
    EXPECT_EQ(a.first, b.first);
}

TEST(Determinism, SchedExperimentEventHashIsBitReproducible)
{
    workload::SchedExperimentConfig cfg;
    cfg.deployment = workload::Deployment::kWave;
    cfg.worker_cores = 4;
    cfg.num_workers = 16;
    cfg.offered_rps = 200'000;
    cfg.warmup_ns = 5'000'000;
    cfg.measure_ns = 20'000'000;
    cfg.seed = 4242;

    const auto a = workload::RunSchedExperiment(cfg);
    const auto b = workload::RunSchedExperiment(cfg);
    EXPECT_EQ(a.event_hash, b.event_hash)
        << "executed event streams diverged between identical runs";
    EXPECT_NE(a.event_hash, 0u);
}

TEST(Determinism, StreamSeedsAreStableAndIndependent)
{
    // Named streams: same (base, name) must reproduce, any change to
    // either must land elsewhere. The fuzz rig leans on this so the
    // fault stream can grow or shrink without disturbing the workload
    // stream of the same base seed.
    EXPECT_EQ(sim::StreamSeed(42, "workload"),
              sim::StreamSeed(42, "workload"));
    EXPECT_NE(sim::StreamSeed(42, "workload"),
              sim::StreamSeed(42, "fault"));
    EXPECT_NE(sim::StreamSeed(42, "workload"),
              sim::StreamSeed(42, "scenario"));
    EXPECT_NE(sim::StreamSeed(42, "workload"),
              sim::StreamSeed(43, "workload"));
    EXPECT_NE(sim::StreamSeed(42, "fault"), 0u);

    // Streams must not be trivially correlated: drawing from two
    // sibling streams yields different sequences.
    sim::Rng a(sim::StreamSeed(7, "workload"));
    sim::Rng b(sim::StreamSeed(7, "fault"));
    int differing = 0;
    for (int i = 0; i < 16; ++i) {
        if (a.Next() != b.Next()) ++differing;
    }
    EXPECT_GE(differing, 15);
}

namespace {

/**
 * Drives a burst of MSI-X traffic over a freshly-built Wave fabric and
 * returns the executed-event fingerprint. @p injector_mode: 0 = no
 * injector attached, 1 = injector attached and armed with an empty
 * schedule, 2 = armed with an active MSI-X delay window.
 */
std::uint64_t
FabricFingerprint(int injector_mode)
{
    sim::Simulator sim;
    machine::Machine machine(sim, machine::MachineConfig{});
    WaveRuntime runtime(sim, machine, pcie::PcieConfig{},
                        api::OptimizationConfig::Full());
    sim::inject::FaultInjector injector(sim);
    if (injector_mode > 0) runtime.AttachInjector(&injector);

    auto vec = runtime.CreateMsiXVector();
    if (injector_mode == 1) {
        injector.Arm({});
    } else if (injector_mode == 2) {
        injector.Arm({{sim::inject::FaultKind::kMsixDelay, /*at=*/sim::TimeNs{0},
                       /*duration=*/1'000'000, /*param=*/5'000}});
    }

    sim.Spawn([](sim::Simulator& s, pcie::MsiXVector& v) -> sim::Task<> {
        for (int i = 0; i < 6; ++i) {
            co_await s.Delay(2'000);
            co_await v.Send();
        }
    }(sim, *vec));
    sim.Spawn([](pcie::MsiXVector& v) -> sim::Task<> {
        for (int i = 0; i < 6; ++i) {
            co_await v.WaitAndReceive();
        }
    }(*vec));
    sim.Run();
    return sim.EventHash();
}

}  // namespace

TEST(Determinism, ArmedEmptyInjectorKeepsFingerprintBitIdentical)
{
    // The injection layer must be invisible until a fault actually
    // fires: window queries draw no randomness and schedule no events,
    // so attach + Arm({}) cannot perturb the executed stream.
    const std::uint64_t without = FabricFingerprint(0);
    const std::uint64_t armed_empty = FabricFingerprint(1);
    const std::uint64_t with_fault = FabricFingerprint(2);
    EXPECT_EQ(without, armed_empty)
        << "an armed-but-empty injector changed the event stream";
    EXPECT_NE(without, with_fault)
        << "an active MSI-X delay window left the event stream untouched";
}

TEST(Determinism, RpcExperimentIsBitReproducible)
{
    rpc::RpcExperimentConfig cfg;
    cfg.scenario = rpc::RpcScenario::kOffloadAll;
    cfg.rocksdb_cores = 8;
    cfg.num_workers = 32;
    cfg.offered_rps = 60'000;
    cfg.warmup_ns = 10'000'000;
    cfg.measure_ns = 60'000'000;
    cfg.seed = 99;

    const auto a = rpc::RunRpcExperiment(cfg);
    const auto b = rpc::RunRpcExperiment(cfg);
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.get_p99, b.get_p99);
    EXPECT_EQ(a.preemptions, b.preemptions);
    EXPECT_EQ(a.steered, b.steered);
    EXPECT_EQ(a.event_hash, b.event_hash);
}

// --- Golden fingerprints: cross-implementation equivalence oracles ---
//
// The tests above prove run-to-run reproducibility, which a rewritten
// event queue could satisfy while still reordering events relative to
// the old implementation. These goldens pin the *absolute* EventHash of
// one fixed-seed configuration per figure-bench family, captured under
// the original std::priority_queue implementation. Any event-queue
// replacement (the timing wheel) must reproduce every value bit-for-bit
// — total (when, key, seq) order equivalence, not just self-consistency.
// A mismatch means the executed event stream changed; do NOT update a
// golden without understanding exactly which schedule moved and why.

namespace {

/** Fig 4a family: FIFO scheduling experiment, Wave deployment. */
std::uint64_t
GoldenFig4aFifo()
{
    workload::SchedExperimentConfig cfg;
    cfg.deployment = workload::Deployment::kWave;
    cfg.policy = workload::PolicyKind::kFifo;
    cfg.worker_cores = 4;
    cfg.num_workers = 16;
    cfg.offered_rps = 200'000;
    cfg.warmup_ns = 5'000'000;
    cfg.measure_ns = 20'000'000;
    cfg.seed = 4242;
    return workload::RunSchedExperiment(cfg).event_hash;
}

/** Fig 4b family: Shinjuku preemptive scheduling, Wave deployment. */
std::uint64_t
GoldenFig4bShinjuku()
{
    workload::SchedExperimentConfig cfg;
    cfg.deployment = workload::Deployment::kWave;
    cfg.policy = workload::PolicyKind::kShinjuku;
    cfg.worker_cores = 4;
    cfg.num_workers = 16;
    cfg.offered_rps = 150'000;
    cfg.get_fraction = 0.995;
    cfg.slice_ns = 30'000;
    cfg.warmup_ns = 5'000'000;
    cfg.measure_ns = 20'000'000;
    cfg.seed = 7;
    return workload::RunSchedExperiment(cfg).event_hash;
}

/** Fig 5 family: VM turbo fixture — ghOSt kernel, VM policy, ticks. */
std::uint64_t
GoldenFig5VmTurbo(bool ticks)
{
    constexpr int kCores = 8;
    sim::Simulator sim;
    machine::MachineConfig mc;
    mc.host_cores = kCores + 1;
    machine::Machine machine(sim, mc);

    machine::TurboModel turbo;
    const machine::FreqGhz freq =
        turbo.Frequency(3, /*idle_cores_deep=*/!ticks);
    machine.HostDomain().SetSpeed(freq.RatioTo(machine::kReferenceFreq));

    WaveRuntime runtime(sim, machine, pcie::PcieConfig{},
                        api::OptimizationConfig::Full());
    std::unique_ptr<ghost::SchedTransport> transport;
    if (ticks) {
        transport = std::make_unique<ghost::ShmSchedTransport>(sim, kCores);
    } else {
        transport =
            std::make_unique<ghost::WaveSchedTransport>(runtime, kCores);
    }
    ghost::GhostCosts costs;
    ghost::KernelOptions options;
    options.timer_ticks = ticks;
    ghost::KernelSched kernel(sim, machine, *transport, costs, options);

    auto policy = std::make_shared<sched::VmPolicy>();
    ghost::AgentConfig agent_cfg;
    std::vector<int> cores;
    for (int c = 0; c < kCores; ++c) cores.push_back(c);
    agent_cfg.cores = cores;
    agent_cfg.prestage = false;
    auto agent = std::make_shared<ghost::GhostAgent>(*transport, policy,
                                                     agent_cfg);
    std::unique_ptr<AgentContext> host_ctx;
    if (ticks) {
        host_ctx = std::make_unique<AgentContext>(
            sim, machine.HostCpu(kCores));
        sim.Spawn(agent->Run(*host_ctx));
    } else {
        runtime.StartWaveAgent(agent, 0);
    }

    for (int c = 0; c < kCores; ++c) {
        const ghost::Tid tid_a = 1000 + c;
        const ghost::Tid tid_b = 2000 + c;
        policy->PinVcpu(tid_a, c);
        policy->PinVcpu(tid_b, c);
        if (c < 3) {
            kernel.AddThread(tid_a,
                             std::make_shared<workload::BusyLoopBody>());
            kernel.AddThread(tid_b,
                             std::make_shared<workload::IdleVcpuBody>());
        } else {
            kernel.AddThread(tid_a,
                             std::make_shared<workload::IdleVcpuBody>());
            kernel.AddThread(tid_b,
                             std::make_shared<workload::IdleVcpuBody>());
        }
    }
    kernel.Start(cores);

    sim.RunFor(2'000'000);
    sim.RunFor(5'000'000);
    return sim.EventHash();
}

/** Fig 6 family: RPC steering experiment (6a single / 6b multi queue). */
std::uint64_t
GoldenFig6Rpc(bool multi_queue)
{
    rpc::RpcExperimentConfig cfg;
    cfg.scenario = rpc::RpcScenario::kOffloadAll;
    cfg.multi_queue = multi_queue;
    cfg.rocksdb_cores = 4;
    cfg.rpc_cores = 2;
    cfg.num_workers = 16;
    cfg.offered_rps = 30'000;
    cfg.warmup_ns = 5'000'000;
    cfg.measure_ns = 20'000'000;
    cfg.seed = 99;
    return rpc::RunRpcExperiment(cfg).event_hash;
}

/** §7.4.2 SOL family: offloaded memory-management agent iteration. */
std::uint64_t
GoldenSolIteration()
{
    sim::Simulator sim;
    machine::Machine machine(sim);
    memmgr::AddressSpace space(409'600);  // scaled-down page count

    sol::SolDeployment deployment;
    for (int i = 0; i < 2; ++i) {
        deployment.cpus.push_back(&machine.NicCpu(i));
    }
    pcie::DmaEngine dma(sim, pcie::PcieConfig{});
    deployment.dma = &dma;
    sol::SolAgent agent(sim, space, deployment);

    sim::DurationNs duration{};
    sim.Spawn([](sol::SolAgent& a, sim::DurationNs& out) -> sim::Task<> {
        out = co_await a.RunIteration();
    }(agent, duration));
    sim.Run();
    return sim.EventHash();
}

}  // namespace

TEST(GoldenFingerprint, Fig4aFifoFamily)
{
    EXPECT_EQ(GoldenFig4aFifo(), 0xf2210550fc6e368eULL);
}

TEST(GoldenFingerprint, Fig4bShinjukuFamily)
{
    EXPECT_EQ(GoldenFig4bShinjuku(), 0xac57e5e518628b07ULL);
}

TEST(GoldenFingerprint, Fig5VmTurboFamily)
{
    EXPECT_EQ(GoldenFig5VmTurbo(/*ticks=*/true), 0xf3f62f945b38d180ULL);
    EXPECT_EQ(GoldenFig5VmTurbo(/*ticks=*/false), 0xba8ad770e039911fULL);
}

TEST(GoldenFingerprint, Fig6aRpcFamily)
{
    EXPECT_EQ(GoldenFig6Rpc(/*multi_queue=*/false), 0xbd28356f23991040ULL);
}

TEST(GoldenFingerprint, Fig6bRpcSloFamily)
{
    EXPECT_EQ(GoldenFig6Rpc(/*multi_queue=*/true), 0x8458b53b95295f5eULL);
}

TEST(GoldenFingerprint, SolMemoryManagementFamily)
{
    EXPECT_EQ(GoldenSolIteration(), 0x08d1f7ffe1ccd4b5ULL);
}

namespace {

/**
 * Offload contention-sweep family: the full deployment (host KV workers,
 * Wave agent on NIC core 0 with a co-located datapath slice, dedicated
 * stage workers on the other NIC cores, open-loop packet generator).
 */
offload::OffloadSweepConfig
OffloadSweepFixture(double core_share, offload::Placement placement)
{
    offload::OffloadSweepConfig cfg;
    cfg.worker_cores = 4;
    cfg.num_workers = 16;
    cfg.nic_cores = 4;
    cfg.core_share = core_share;
    cfg.full_rate_pps = 400'000;
    cfg.placement = placement;
    cfg.flows = 64;
    cfg.offered_rps = 100'000;
    cfg.warmup_ns = 5'000'000;
    cfg.measure_ns = 20'000'000;
    cfg.drain_ns = 2'000'000;
    cfg.seed = 4242;
    return cfg;
}

}  // namespace

TEST(Determinism, OffloadSweepIsBitReproducible)
{
    const auto cfg =
        OffloadSweepFixture(0.5, offload::Placement::kRunToCompletion);
    const auto a = offload::RunOffloadSweep(cfg);
    const auto b = offload::RunOffloadSweep(cfg);
    EXPECT_EQ(a.event_hash, b.event_hash);
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.packets_completed, b.packets_completed);
    EXPECT_EQ(a.agent_iter_p99, b.agent_iter_p99);
    EXPECT_EQ(a.get_p99, b.get_p99);
    EXPECT_NE(a.event_hash, 0u);
    // The datapath actually ran and the agent kept iterating under it.
    EXPECT_GT(a.packets_completed, 0u);
    EXPECT_GT(a.agent_iterations, 0u);
}

TEST(GoldenFingerprint, OffloadSweepRunToCompletion)
{
    const auto r = offload::RunOffloadSweep(
        OffloadSweepFixture(0.5, offload::Placement::kRunToCompletion));
    EXPECT_EQ(r.event_hash, 0xefa3ab517fddc656ULL);
}

TEST(GoldenFingerprint, OffloadSweepPipelined)
{
    const auto r = offload::RunOffloadSweep(
        OffloadSweepFixture(0.75, offload::Placement::kPipelined));
    EXPECT_EQ(r.event_hash, 0x0e49379bad42fcf0ULL);
}

TEST(GoldenFingerprint, FuzzCorpusSeeds)
{
    // Four seeded fault-injection scenarios: the corpus exercises agent
    // stalls, MSI-X drops, DMA delays, and commit-fail bursts across
    // the whole fabric, so queue-order equivalence here covers paths no
    // single figure bench reaches.
    constexpr std::uint64_t kGolden[] = {0xdb362ab85c450f81ULL, 0xc09fbff0fc0e5ef8ULL,
                                     0x95d28d5aa82152ceULL, 0x98bddef9581a478aULL};
    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
        const fuzz::Scenario s = fuzz::GenerateScenario(seed);
        const fuzz::RunResult r = fuzz::RunScenario(s);
        EXPECT_EQ(r.event_hash, kGolden[seed - 1]) << "seed " << seed;
    }
}

}  // namespace
}  // namespace wave
