// Fixture: wave-lifetime contract attached to no Task-returning
// function head -> W304. The function it once named was renamed out
// from under the annotation.
// wave-domain: neutral

namespace wave::fixture {

// wave-lifetime(caller-awaits)
inline int
NotACoroutineAnymore(int x)
{
    return x + 1;
}

}  // namespace wave::fixture
