// Fixture: well-behaved model file -> zero findings.
// wave-domain: nic
#include "sim/time.h"

namespace wave::fixture {

inline wave::sim::DurationNs
Twice(wave::sim::DurationNs d)
{
    return d * 2;
}

}  // namespace wave::fixture
