// Fixture: NIC-domain file naming a host-owned symbol -> W003.
// wave-domain: nic
#include <cstdint>

namespace wave::fixture {

void
PeekAtHost()
{
    workload::LoadGenConfig config;
    (void)config;
}

}  // namespace wave::fixture
