// Fixture: capturing-lambda coroutine -> W202. The closure dies at the
// first suspension when the lambda is a temporary.
// wave-domain: host

namespace wave::fixture {

inline void
Arm(int& hits)
{
    auto body = [&hits]() -> sim::Task<> {
        ++hits;
        co_await NextEvent();
    };
    Use(body);
}

}  // namespace wave::fixture
