// Fixture: iteration over a pointer-keyed unordered container ->
// W205. Keyed lookups would be fine; the range-for is not.
// wave-domain: host
#include <unordered_map>

namespace wave::fixture {

struct Registry {
    std::unordered_map<const void*, int> by_addr;

    int
    Sum() const
    {
        int total = 0;
        for (const auto& [addr, count] : by_addr) {
            total += count;
        }
        return total;
    }
};

}  // namespace wave::fixture
