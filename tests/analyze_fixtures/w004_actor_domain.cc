// Fixture: actor registration with no domain in the label and no
// wave-domain comment on the call site -> W004.
// wave-domain: host
#include "sim/actor.h"

namespace wave::fixture {

inline wave::sim::ActorId
MakeActor(wave::sim::ActorRegistry& registry)
{
    return registry.RegisterActor("core-loop");
}

}  // namespace wave::fixture
