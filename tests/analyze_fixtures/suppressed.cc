// Fixture: same W007 violation as w007_wall_clock.cc, but carrying an
// inline suppression -> zero findings.
// wave-domain: neutral
#include <cstdlib>

namespace wave::fixture {

inline int
Jitter()
{
    // wave-analyze: allow(W007 fixture exercising the suppression path)
    return std::rand() % 7;
}

}  // namespace wave::fixture
