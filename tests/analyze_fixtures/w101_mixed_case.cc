// Fixture: sized vector local with a CamelCase name in a hot region -> W101.
// The first sized-buffer pattern only matched snake_case identifiers,
// so a local spelled like a type escaped the rule.
// wave-domain: neutral
// wave-hot

#include <vector>

namespace wave::fixture {

inline int
SumScratch()
{
    std::vector<int> ScratchBuf(64);
    return static_cast<int>(ScratchBuf.size());
}

}  // namespace wave::fixture
