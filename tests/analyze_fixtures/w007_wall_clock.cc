// Fixture: determinism-hostile RNG in model code -> W007.
// wave-domain: neutral
#include <cstdlib>

namespace wave::fixture {

inline int
Jitter()
{
    return std::rand() % 7;
}

}  // namespace wave::fixture
