// Fixture: host-domain code calls straight into a nic-domain function
// instead of routing through the pcie seam -> W305. The callee lives
// in w305_seam_bypass_b.cc; analyze both files in one invocation.
// wave-domain: host

namespace wave::fixture {

inline int
CallAcross()
{
    return NicSidePoll();
}

}  // namespace wave::fixture
