// Fixture: host-shard file reads mutable state owned by the nic shard
// without crossing the pcie seam -> W302. The owning definition lives
// in w302_closure_leak_b.cc; analyze both files in one invocation.
// wave-domain: host

namespace wave::fixture {

inline int
ReadRemote()
{
    return g_nic_counter;
}

}  // namespace wave::fixture
