// Fixture: the allow() incantation inside a string literal must NOT
// suppress the violation on the next line.
// wave-domain: neutral
#include <random>

namespace wave::fixture {

inline const char* const kDoc =
    "wave-analyze: allow(W007 quoted text, not a comment)";
inline std::mt19937 g_rng;

}  // namespace wave::fixture
