// Fixture support: the nic-domain callee that w305_seam_bypass.cc
// dials directly across the domain boundary.
// wave-domain: nic

namespace wave::fixture {

inline int
NicSidePoll()
{
    return 3;
}

}  // namespace wave::fixture
