// Fixture: pcie-seam file with no wave-owns/wave-shared shard
// classification -> W204.
// wave-domain: pcie

namespace wave::fixture {

struct SeamState {
    int doorbells = 0;
};

}  // namespace wave::fixture
