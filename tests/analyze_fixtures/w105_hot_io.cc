// Fixture: I/O call inside a hot region -> W105.
// wave-domain: neutral
// wave-hot
#include <cstdio>

namespace wave::fixture {

inline void
Report(int v)
{
    std::printf("%d\n", v);
}

}  // namespace wave::fixture
