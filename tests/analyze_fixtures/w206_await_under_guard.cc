// Fixture: co_await while a scoped guard local is live -> W206.
// wave-domain: host

namespace wave::fixture {

sim::Task<>
Drain()
{
    StatsGuard guard(1);
    co_await NextEvent();
    co_return;
}

}  // namespace wave::fixture
