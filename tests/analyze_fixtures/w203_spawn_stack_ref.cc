// Fixture: Spawn() of an immediately-invoked lambda binding a
// reference parameter to the spawner's stack -> W203.
// wave-domain: host

namespace wave::fixture {

inline void
Start(sim::Simulator& sim)
{
    int counter = 0;
    sim.Spawn([](int& n) -> sim::Task<> {
        ++n;
        co_return;
    }(counter));
}

}  // namespace wave::fixture
