// Fixture: checker instrumentation call sitting bare in model code,
// outside WAVE_CHECK_HOOK and any WAVE_CHECK_ENABLED gate -> W005.
// wave-domain: pcie
namespace wave::fixture {

struct Checker {
    void OnWrite(unsigned addr, unsigned size);
};

void
StoreWord(Checker* checker)
{
    checker->OnWrite(0, 8);
}

}  // namespace wave::fixture
