// Fixture: heavy type passed by value across a hot signature -> W104.
// wave-domain: neutral
// wave-hot
#include <string>

namespace wave::fixture {

inline std::size_t
Consume(std::string name)
{
    return name.size();
}

}  // namespace wave::fixture
