// Fixture: optimistic read tolerating staleness without the mandatory
// same-line justification comment -> W006.
// wave-domain: pcie
namespace wave::fixture {

struct Mapping {
    unsigned Read(unsigned addr, bool tolerate_stale);
};

unsigned
PollHead(Mapping& map)
{
    return map.Read(64, /*tolerate_stale=*/true);
}

}  // namespace wave::fixture
