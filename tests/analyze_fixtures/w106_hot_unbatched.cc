// Fixture: per-element channel op inside a hot loop -> W106.
// wave-domain: neutral
// wave-hot

namespace wave::fixture {

template <typename C>
inline void
FloodOneByOne(C& ch)
{
    for (int i = 0; i < 64; ++i) {
        ch.Push(i);
    }
}

}  // namespace wave::fixture
