// Fixture: justified suppression of a hot-path rule. The allow() with a
// written reason silences W101 and the run exits clean, counting one
// suppression.
// wave-domain: neutral
// wave-hot

namespace wave::fixture {

inline int*
GrowthPath()
{
    // wave-analyze: allow(W101 growth path runs once at setup, never per event)
    return new int(4);
}

}  // namespace wave::fixture
