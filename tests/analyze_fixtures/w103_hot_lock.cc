// Fixture: synchronization primitive inside a hot region -> W103.
// wave-domain: neutral
// wave-hot
#include <mutex>

namespace wave::fixture {

inline std::mutex g_hot_lock;

}  // namespace wave::fixture
