// Fixture: model file with no domain annotation at all -> W001.
#include <cstdint>

namespace wave::fixture {

inline std::uint64_t
Identity(std::uint64_t v)
{
    return v;
}

}  // namespace wave::fixture
