// Fixture: the allow() comment sits on the line above the violation,
// which must suppress it just like a same-line comment.
// wave-domain: neutral
#include <cstdlib>

namespace wave::fixture {

inline int
Jitter()
{
    // wave-analyze: allow(W007 fixture exercising the line-above path)
    return std::rand() % 7;
}

}  // namespace wave::fixture
