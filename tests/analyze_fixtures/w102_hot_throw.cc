// Fixture: exception machinery inside a hot region -> W102.
// wave-domain: neutral
// wave-hot

namespace wave::fixture {

inline void
Validate(int v)
{
    if (v < 0) throw v;
}

}  // namespace wave::fixture
