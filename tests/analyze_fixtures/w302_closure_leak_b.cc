// Fixture support: the nic-shard owner of the mutable counter that
// w302_closure_leak.cc reads across the shard boundary.
// wave-domain: nic

namespace wave::fixture {

// wave-analyze: allow(W303 fixture-planted mutable state; the violation under test is the cross-shard read in w302_closure_leak.cc)
int g_nic_counter = 0;

}  // namespace wave::fixture
