// Fixture: reference-taking Task coroutine with no wave-lifetime
// contract -> W201.
// wave-domain: host

namespace wave::fixture {

struct Buffer {
    int pending = 0;
};

sim::Task<>
Pump(Buffer& buffer)
{
    while (buffer.pending > 0) {
        co_await NextEvent();
        --buffer.pending;
    }
}

}  // namespace wave::fixture
