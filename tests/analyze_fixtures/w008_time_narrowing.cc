// Fixture: ad-hoc time->double cast bypassing the sanctioned
// sim/time.h bridge -> W008.
// wave-domain: neutral
#include "sim/time.h"

namespace wave::fixture {

inline double
LatencyUs(wave::sim::DurationNs d)
{
    return static_cast<double>(d.ns()) / 1e3;
}

}  // namespace wave::fixture
