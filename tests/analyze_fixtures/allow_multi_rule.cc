// Fixture: one allow() comment listing two rule ids suppresses both
// findings on the line below.
// wave-domain: neutral
// wave-hot
#include <cstdio>
#include <string>

namespace wave::fixture {

inline void
Report(int value)
{
    // wave-analyze: allow(W101 W105 fixture: cold shutdown report)
    std::string label("v"); std::printf("%s=%d\n", label.c_str(), value);
}

}  // namespace wave::fixture
