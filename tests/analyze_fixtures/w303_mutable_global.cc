// Fixture: namespace-scope mutable counter with no wave-shared story
// and no inline justification -> W303.
// wave-domain: neutral

namespace wave::fixture {

int g_events_seen = 0;

}  // namespace wave::fixture
