// Fixture: host-domain file reaching straight into the NIC-side SOL
// agent instead of going through the pcie seam -> W002.
// wave-domain: host
#include "sol/agent.h"

namespace wave::fixture {

void TouchNicState();

}  // namespace wave::fixture
