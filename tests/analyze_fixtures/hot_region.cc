// Fixture: region-scoped wave-hot. Only the allocation between the
// begin/end markers trips W101; the identical allocations outside the
// region stay silent.
// wave-domain: neutral

namespace wave::fixture {

inline int*
ColdSetup()
{
    return new int(1);
}

// wave-hot: begin
inline int*
HotPath()
{
    return new int(2);
}
// wave-hot: end

inline int*
ColdTeardown()
{
    return new int(3);
}

}  // namespace wave::fixture
