// Fixture: heap allocation inside a hot region -> W101.
// wave-domain: neutral
// wave-hot

namespace wave::fixture {

inline int*
PerEventNode()
{
    return new int(7);
}

}  // namespace wave::fixture
