// Fixture: hot call site reaches an allocating cold helper two hops
// away -> W301. Per-file W101 stays silent (the allocation line is
// cold); only the cross-TU reachability pass sees the chain.
// wave-domain: neutral

namespace wave::fixture {

inline int*
GrowPool()
{
    return new int[16];
}

inline int*
Acquire()
{
    return GrowPool();
}

// wave-hot: begin
inline int*
PerEvent()
{
    return Acquire();
}
// wave-hot: end

}  // namespace wave::fixture
