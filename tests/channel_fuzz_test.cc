/**
 * @file
 * Property/fuzz tests for the Floem-style queues: random interleavings
 * of producer batches, consumer polls, stalls, and (for the host
 * consumer) flush/prefetch operations are checked against a reference
 * FIFO model. Invariants: no loss, no duplication, no reordering, no
 * torn reads (payload always matches the sequence number it carries),
 * and flow control never admits more than `capacity` unconsumed
 * entries.
 *
 * When built with WAVE_CHECK (the default), every fuzz run also uses
 * the protocol state-machine verifier and the happens-before race
 * detector as oracles: random interleavings must never produce a
 * seqnum violation or an unordered conflicting access, no matter how
 * the batches, stalls, and flush/prefetch mixes land.
 */
#include <gtest/gtest.h>

#include <cstring>
#include <deque>

#include "channel/dma_queue.h"
#include "channel/mmio_queue.h"
#include "pcie/config.h"
#include "sim/random.h"
#include "sim/simulator.h"

#ifdef WAVE_CHECK_ENABLED
#include "check/hb.h"
#include "check/protocol.h"
#endif

namespace wave::channel {
namespace {

using pcie::NicDram;
using pcie::PcieConfig;
using pcie::PteType;
using sim::Rng;
using sim::Simulator;
using sim::Task;

#define CO_ASSERT(expr)                                     \
    do {                                                    \
        if (!(expr)) {                                      \
            ADD_FAILURE() << "CO_ASSERT failed: " << #expr; \
            co_return;                                      \
        }                                                   \
    } while (0)

/** Payload: sequence number + a value derived from it (torn-read bait). */
Bytes
SeqMsg(std::uint64_t seq, std::size_t payload_size)
{
    Bytes b(payload_size);
    std::memcpy(b.data(), &seq, sizeof(seq));
    const std::uint64_t check = seq * 0x9E3779B97F4A7C15ull + 1;
    std::memcpy(b.data() + 8, &check, sizeof(check));
    return b;
}

/** Returns the sequence number; fails the test on a torn payload. */
std::uint64_t
CheckMsg(const Bytes& b)
{
    std::uint64_t seq = 0;
    std::uint64_t check = 0;
    std::memcpy(&seq, b.data(), sizeof(seq));
    std::memcpy(&check, b.data() + 8, sizeof(check));
    EXPECT_EQ(check, seq * 0x9E3779B97F4A7C15ull + 1)
        << "torn read: payload does not match its sequence number";
    return seq;
}

struct FuzzParams {
    std::uint64_t seed;
    std::size_t capacity;
    std::size_t messages;
};

class MmioFuzzTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(MmioFuzzTest, HostToNicRandomInterleavings)
{
    const auto [seed, capacity] = GetParam();
    const std::size_t total = 400;

    Simulator sim;
    NicDram dram(sim, PcieConfig{}, 1 << 20);
    QueueConfig qc{.capacity = static_cast<std::size_t>(capacity),
                   .payload_size = 48,
                   .sync_interval = 4};
    MmioQueue queue(dram, 0, qc);
    HostProducer producer(queue, PteType::kWriteCombining,
                          PteType::kWriteThrough);
    NicConsumer consumer(queue, PteType::kWriteBack);

#ifdef WAVE_CHECK_ENABLED
    check::ProtocolChecker protocol(sim);
    check::HbRaceDetector hb(sim);
    producer.BindCheckers(&hb, &protocol,
                          hb.RegisterActor("fuzz-host-producer"));
    consumer.BindCheckers(&hb, &protocol,
                          hb.RegisterActor("fuzz-nic-consumer"));
#endif

    bool producer_done = false;
    std::uint64_t received = 0;

    sim.Spawn([](Simulator& s, HostProducer& p, std::uint64_t sd,
                 bool& done) -> Task<> {
        Rng rng(sd);
        std::uint64_t next = 0;
        while (next < total) {
            // Random batch sizes, random pauses, retry on full.
            const std::size_t batch_size = 1 + rng.NextBounded(7);
            std::vector<Bytes> batch;
            for (std::size_t i = 0;
                 i < batch_size && next + i < total; ++i) {
                batch.push_back(SeqMsg(next + i, 48));
            }
            const std::size_t sent = co_await p.Send(batch);
            next += sent;
            co_await s.Delay(rng.NextBounded(3000) + 1);
        }
        done = true;
    }(sim, producer, seed, producer_done));

    sim.Spawn([](Simulator& s, NicConsumer& c, std::uint64_t sd,
                 std::uint64_t& rcv, bool& done) -> Task<> {
        Rng rng(sd ^ 0xABCDEF);
        std::uint64_t expected = 0;
        while (expected < total) {
            if (rng.NextBernoulli(0.2)) {
                // Occasional consumer stall exercises flow control.
                co_await s.Delay(rng.NextBounded(5000) + 100);
            }
            auto message = co_await c.Poll();
            if (!message) {
                co_await s.Delay(97);
                continue;
            }
            CO_ASSERT(CheckMsg(*message) == expected);
            ++expected;
            ++rcv;
        }
        (void)done;
    }(sim, consumer, seed, received, producer_done));

    sim.RunFor(1'000'000'000ull);  // plenty; ends when drained
    EXPECT_EQ(received, total) << "messages lost or duplicated";
    EXPECT_TRUE(producer_done);
#ifdef WAVE_CHECK_ENABLED
    for (const auto& v : protocol.Violations()) {
        ADD_FAILURE() << v.Describe();
    }
    for (const auto& race : hb.Races()) {
        ADD_FAILURE() << race.Describe();
    }
    EXPECT_EQ(protocol.Stats().stream_recvs, total);
#endif
}

TEST_P(MmioFuzzTest, NicToHostWithRandomFlushPrefetchMix)
{
    const auto [seed, capacity] = GetParam();
    const std::size_t total = 300;

    Simulator sim;
    NicDram dram(sim, PcieConfig{}, 1 << 20);
    QueueConfig qc{.capacity = static_cast<std::size_t>(capacity),
                   .payload_size = 48,
                   .sync_interval = 2};
    MmioQueue queue(dram, 0, qc);
    NicProducer producer(queue, PteType::kWriteBack);
    HostConsumer consumer(queue, PteType::kWriteThrough,
                          PteType::kWriteCombining);

#ifdef WAVE_CHECK_ENABLED
    check::ProtocolChecker protocol(sim);
    check::HbRaceDetector hb(sim);
    producer.BindCheckers(&hb, &protocol,
                          hb.RegisterActor("fuzz-nic-producer"));
    consumer.BindCheckers(&hb, &protocol,
                          hb.RegisterActor("fuzz-host-consumer"));
#endif

    std::uint64_t received = 0;

    sim.Spawn([](Simulator& s, NicProducer& p, std::uint64_t sd) -> Task<> {
        Rng rng(sd);
        std::uint64_t next = 0;
        while (next < total) {
            if (co_await p.Send(SeqMsg(next, 48))) {
                ++next;
            } else {
                co_await s.Delay(500);
            }
            co_await s.Delay(rng.NextBounded(2000));
        }
    }(sim, producer, seed));

    sim.Spawn([](Simulator& s, HostConsumer& c, std::uint64_t sd,
                 std::uint64_t& rcv) -> Task<> {
        Rng rng(sd ^ 0x5555);
        std::uint64_t expected = 0;
        while (expected < total) {
            // Mix of the host's three read strategies.
            const int strategy = static_cast<int>(rng.NextBounded(3));
            std::optional<Bytes> message;
            if (strategy == 0) {
                message = co_await c.Poll(/*flush_first=*/true);
            } else if (strategy == 1) {
                co_await c.PrefetchNext();
                co_await s.Delay(1000);  // overlap
                message = co_await c.Poll(/*flush_first=*/false);
            } else {
                // Unflushed poll: may legally see a stale empty slot,
                // but anything it accepts must still be correct.
                message = co_await c.Poll(/*flush_first=*/false);
            }
            if (!message) {
                co_await s.Delay(433);
                continue;
            }
            CO_ASSERT(CheckMsg(*message) == expected);
            ++expected;
            ++rcv;
        }
    }(sim, consumer, seed, received));

    sim.RunFor(2'000'000'000ull);
    EXPECT_EQ(received, total)
        << "flush/prefetch mix lost or reordered decisions";
#ifdef WAVE_CHECK_ENABLED
    for (const auto& v : protocol.Violations()) {
        ADD_FAILURE() << v.Describe();
    }
    for (const auto& race : hb.Races()) {
        ADD_FAILURE() << race.Describe();
    }
    EXPECT_EQ(protocol.Stats().stream_recvs, total);
#endif
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndCapacities, MmioFuzzTest,
    ::testing::Combine(::testing::Values(1, 2, 3, 4),
                       ::testing::Values(4, 16, 64)));

class DmaFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(DmaFuzzTest, RandomBatchesSyncAndAsync)
{
    const std::uint64_t seed = static_cast<std::uint64_t>(GetParam());
    const std::size_t total = 500;

    Simulator sim;
    pcie::DmaEngine dma(sim, PcieConfig{});
    DmaQueue queue(sim, dma, pcie::DmaInitiator::kNic,
                   QueueConfig{.capacity = 32,
                               .payload_size = 48,
                               .sync_interval = 4});

#ifdef WAVE_CHECK_ENABLED
    check::ProtocolChecker protocol(sim);
    queue.AttachProtocol(&protocol);
#endif

    std::uint64_t received = 0;

    sim.Spawn([](Simulator& s, DmaQueue& q, std::uint64_t sd) -> Task<> {
        Rng rng(sd);
        std::uint64_t next = 0;
        while (next < total) {
            const std::size_t batch_size = 1 + rng.NextBounded(9);
            std::vector<Bytes> batch;
            for (std::size_t i = 0;
                 i < batch_size && next + i < total; ++i) {
                batch.push_back(SeqMsg(next + i, 48));
            }
            // Randomly sync or async (iPipe exercises both).
            next += co_await q.Send(batch, rng.NextBernoulli(0.5));
            co_await s.Delay(rng.NextBounded(4000) + 1);
        }
    }(sim, queue, seed));

    sim.Spawn([](Simulator& s, DmaQueue& q, std::uint64_t sd,
                 std::uint64_t& rcv) -> Task<> {
        Rng rng(sd ^ 0xF00D);
        std::uint64_t expected = 0;
        while (expected < total) {
            auto message = co_await q.Poll();
            if (!message) {
                co_await s.Delay(rng.NextBounded(2000) + 100);
                continue;
            }
            CO_ASSERT(CheckMsg(*message) == expected);
            ++expected;
            ++rcv;
        }
    }(sim, queue, seed, received));

    sim.RunFor(2'000'000'000ull);
    EXPECT_EQ(received, total);
#ifdef WAVE_CHECK_ENABLED
    for (const auto& v : protocol.Violations()) {
        ADD_FAILURE() << v.Describe();
    }
    EXPECT_EQ(protocol.Stats().stream_recvs, total);
#endif
}

INSTANTIATE_TEST_SUITE_P(Seeds, DmaFuzzTest,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

}  // namespace
}  // namespace wave::channel
