/**
 * @file
 * Unit tests for the core Wave framework: runtime queue/agent lifecycle,
 * the transaction API (create/commit/poll/outcomes, with and without
 * MSI-X), the shared-memory baseline queue, and the watchdog.
 */
#include <gtest/gtest.h>

#include <cstring>

#include "channel/bytes.h"
#include "machine/machine.h"
#include "sim/simulator.h"
#include "wave/api.h"
#include "wave/runtime.h"
#include "wave/shm_queue.h"
#include "wave/txn.h"
#include "wave/watchdog.h"

namespace wave {
namespace {

using api::OptimizationConfig;
using api::TxnOutcome;
using api::TxnStatus;
using sim::Simulator;
using sim::Task;
using namespace sim::time_literals;

#define CO_ASSERT(expr)                                     \
    do {                                                    \
        if (!(expr)) {                                      \
            ADD_FAILURE() << "CO_ASSERT failed: " << #expr; \
            co_return;                                      \
        }                                                   \
    } while (0)

api::Bytes
Payload(std::uint64_t v, std::size_t n = 40)
{
    api::Bytes b(n);
    std::memcpy(b.data(), &v, sizeof(v));
    return b;
}

std::uint64_t
PayloadValue(const api::Bytes& b)
{
    std::uint64_t v = 0;
    std::memcpy(&v, b.data(), sizeof(v));
    return v;
}

struct RuntimeFixture {
    explicit RuntimeFixture(OptimizationConfig opt = OptimizationConfig::Full())
        : machine(sim), runtime(sim, machine, pcie::PcieConfig{}, opt)
    {
    }

    Simulator sim;
    machine::Machine machine;
    WaveRuntime runtime;
};

TEST(Runtime, AllocatesNonOverlappingQueues)
{
    RuntimeFixture f;
    channel::QueueConfig qc{.capacity = 16, .payload_size = 48};
    auto a = f.runtime.CreateHostToNicQueue(qc);
    auto b = f.runtime.CreateHostToNicQueue(qc);
    const std::size_t a_end =
        a.storage->Base() + a.storage->Layout().BytesNeeded();
    EXPECT_LE(a_end, b.storage->Base());
}

TEST(Runtime, EndToEndMessageFlow)
{
    RuntimeFixture f;
    auto chan = f.runtime.CreateHostToNicQueue(
        channel::QueueConfig{.capacity = 32, .payload_size = 48});

    f.sim.Spawn([](RuntimeFixture& fx, HostToNicChannel& c) -> Task<> {
        std::vector<api::Bytes> batch;
        for (std::uint64_t i = 0; i < 4; ++i) {
            batch.push_back(Payload(i, 48));
        }
        EXPECT_EQ(co_await c.host->Send(batch), 4u);
        co_await fx.sim.Delay(1_us);
        auto got = co_await c.nic->PollBatch(10);
        CO_ASSERT(got.size() == 4u);
        for (std::uint64_t i = 0; i < 4; ++i) {
            EXPECT_EQ(PayloadValue(got[i]), i);
        }
    }(f, chan));
    f.sim.Run();
}

TEST(Runtime, OptimizationConfigSelectsPteTypes)
{
    RuntimeFixture baseline{OptimizationConfig::None()};
    EXPECT_EQ(baseline.runtime.NicPte(), pcie::PteType::kUncacheable);

    RuntimeFixture full{OptimizationConfig::Full()};
    EXPECT_EQ(full.runtime.NicPte(), pcie::PteType::kWriteBack);
}

struct TxnFixture {
    explicit TxnFixture(bool with_msix = true)
        : machine(f_sim),
          runtime(f_sim, machine, pcie::PcieConfig{},
                  OptimizationConfig::Full())
    {
        decisions = runtime.CreateNicToHostQueue(channel::QueueConfig{
            .capacity = 32,
            .payload_size = TxnWire::DecisionPayloadSize(40)});
        outcomes = runtime.CreateHostToNicQueue(channel::QueueConfig{
            .capacity = 32, .payload_size = TxnWire::kOutcomeSize});
        if (with_msix) {
            msix = runtime.CreateMsiXVector();
        }
        nic = std::make_unique<NicTxnEndpoint>(*decisions.nic,
                                               *outcomes.nic, msix.get());
        host = std::make_unique<HostTxnEndpoint>(
            *decisions.host, *outcomes.host, msix.get());
    }

    Simulator f_sim;
    machine::Machine machine;
    WaveRuntime runtime;
    NicToHostChannel decisions;
    HostToNicChannel outcomes;
    std::unique_ptr<pcie::MsiXVector> msix;
    std::unique_ptr<NicTxnEndpoint> nic;
    std::unique_ptr<HostTxnEndpoint> host;
};

TEST(Txn, CreateCommitPollOutcomeRoundTrip)
{
    TxnFixture f;

    f.f_sim.Spawn([](TxnFixture& fx) -> Task<> {
        const api::TxnId id = fx.nic->TxnCreate(Payload(777));
        EXPECT_EQ(fx.nic->StagedCount(), 1u);
        EXPECT_EQ(co_await fx.nic->TxnsCommit(/*send_msix=*/true), 1u);
        EXPECT_EQ(fx.nic->StagedCount(), 0u);

        // Host: kicked by MSI-X, flush (software coherence), poll.
        co_await fx.host->WaitForKick();
        auto txn = co_await fx.host->PollTxns(/*flush_first=*/true);
        CO_ASSERT(txn.has_value());
        EXPECT_EQ(txn->id, id);
        EXPECT_EQ(PayloadValue(txn->payload), 777u);

        // Host commits and reports the outcome.
        std::vector<TxnOutcome> outcome_batch;
        outcome_batch.push_back(TxnOutcome{txn->id, TxnStatus::kCommitted});
        co_await fx.host->SetTxnsOutcomes(outcome_batch);
        co_await fx.f_sim.Delay(1_us);

        auto outs = co_await fx.nic->PollTxnsOutcomes(10);
        CO_ASSERT(outs.size() == 1u);
        EXPECT_EQ(outs[0].txn_id, id);
        EXPECT_EQ(outs[0].status, TxnStatus::kCommitted);
    }(f));
    f.f_sim.Run();
}

TEST(Txn, FailedCommitReportsCleanly)
{
    TxnFixture f;

    f.f_sim.Spawn([](TxnFixture& fx) -> Task<> {
        const api::TxnId id = fx.nic->TxnCreate(Payload(1));
        co_await fx.nic->TxnsCommit(true);
        co_await fx.host->WaitForKick();
        auto txn = co_await fx.host->PollTxns(true);
        CO_ASSERT(txn.has_value());

        // The target thread exited concurrently: the commit fails
        // without corrupting host state, and the agent learns why.
        std::vector<TxnOutcome> outcome_batch;
        outcome_batch.push_back(TxnOutcome{txn->id, TxnStatus::kFailedStale});
        co_await fx.host->SetTxnsOutcomes(outcome_batch);
        co_await fx.f_sim.Delay(1_us);
        auto outs = co_await fx.nic->PollTxnsOutcomes(10);
        CO_ASSERT(outs.size() == 1u);
        EXPECT_EQ(outs[0].txn_id, id);
        EXPECT_EQ(outs[0].status, TxnStatus::kFailedStale);
    }(f));
    f.f_sim.Run();
}

TEST(Txn, BatchedCommitPreservesOrder)
{
    TxnFixture f;

    f.f_sim.Spawn([](TxnFixture& fx) -> Task<> {
        std::vector<api::TxnId> ids;
        for (std::uint64_t i = 0; i < 5; ++i) {
            ids.push_back(fx.nic->TxnCreate(Payload(100 + i)));
        }
        EXPECT_EQ(co_await fx.nic->TxnsCommit(true), 5u);

        co_await fx.host->WaitForKick();
        for (std::uint64_t i = 0; i < 5; ++i) {
            auto txn = co_await fx.host->PollTxns(true);
            CO_ASSERT(txn.has_value());
            EXPECT_EQ(txn->id, ids[i]);
            EXPECT_EQ(PayloadValue(txn->payload), 100 + i);
        }
    }(f));
    f.f_sim.Run();
}

TEST(Txn, SkipMsixLeavesHostPolling)
{
    TxnFixture f;

    f.f_sim.Spawn([](TxnFixture& fx) -> Task<> {
        fx.nic->TxnCreate(Payload(5));
        // The RPC stack skips the MSI-X (§4.3); the host polls instead.
        co_await fx.nic->TxnsCommit(/*send_msix=*/false);
        EXPECT_EQ(fx.msix->SendCount(), 0u);

        auto txn = co_await fx.host->PollTxns(true);
        CO_ASSERT(txn.has_value());
        EXPECT_EQ(PayloadValue(txn->payload), 5u);
    }(f));
    f.f_sim.Run();
}

TEST(Txn, PrefetchedPollAvoidsPcieRead)
{
    TxnFixture f;

    f.f_sim.Spawn([](TxnFixture& fx) -> Task<> {
        fx.nic->TxnCreate(Payload(9));
        co_await fx.nic->TxnsCommit(false);

        co_await fx.host->PrefetchTxns();
        co_await fx.f_sim.Delay(1_us);  // overlapped kernel work
        const auto t0 = fx.f_sim.Now();
        auto txn = co_await fx.host->PollTxns(/*flush_first=*/false);
        const auto cost = fx.f_sim.Now() - t0;
        CO_ASSERT(txn.has_value());
        EXPECT_LE(cost, pcie::PcieConfig{}.cache_hit_ns);
    }(f));
    f.f_sim.Run();
}

class AgentKillTest : public ::testing::Test {};

/** Minimal agent: counts loop iterations until killed. */
class CountingAgent : public Agent {
  public:
    explicit CountingAgent(int& iterations) : iterations_(iterations) {}

    std::string Name() const override { return "counting-agent"; }

    Task<>
    Run(AgentContext& ctx) override
    {
        while (!ctx.StopRequested()) {
            co_await ctx.Sim().Delay(1_us);
            ++iterations_;
        }
    }

  private:
    int& iterations_;
};

TEST(AgentLifecycle, StartRunsAgentOnNicCore)
{
    RuntimeFixture f;
    int iterations = 0;
    const AgentId id = f.runtime.StartWaveAgent(
        std::make_shared<CountingAgent>(iterations), /*nic_core=*/0);
    f.sim.RunFor(10_us);
    EXPECT_TRUE(f.runtime.AgentAlive(id));
    EXPECT_GE(iterations, 9);
}

TEST(AgentLifecycle, KillStopsAgentAtNextPoll)
{
    RuntimeFixture f;
    int iterations = 0;
    const AgentId id = f.runtime.StartWaveAgent(
        std::make_shared<CountingAgent>(iterations), 0);
    f.sim.RunFor(5_us);
    f.runtime.KillWaveAgent(id);
    f.sim.RunFor(5_us);
    EXPECT_FALSE(f.runtime.AgentAlive(id));
    const int at_kill = iterations;
    f.sim.RunFor(10_us);
    EXPECT_EQ(iterations, at_kill) << "agent kept running after kill";
}

TEST(AgentLifecycle, RestartAfterKill)
{
    RuntimeFixture f;
    int first_run = 0;
    int second_run = 0;
    const AgentId first = f.runtime.StartWaveAgent(
        std::make_shared<CountingAgent>(first_run), 0);
    f.sim.RunFor(5_us);
    f.runtime.KillWaveAgent(first);
    f.sim.RunFor(2_us);
    ASSERT_FALSE(f.runtime.AgentAlive(first));

    // Restart: a fresh agent instance re-pulls state and continues
    // (the host kernel remained the source of truth).
    const AgentId second = f.runtime.StartWaveAgent(
        std::make_shared<CountingAgent>(second_run), 0);
    f.sim.RunFor(5_us);
    EXPECT_TRUE(f.runtime.AgentAlive(second));
    EXPECT_GT(second_run, 0);
}

TEST(Watchdog, FiresWhenDecisionsStop)
{
    Simulator sim;
    bool expired = false;
    Watchdog dog(sim, /*timeout=*/20_ms, /*check_interval=*/1_ms,
                 [&] { expired = true; });
    dog.Arm();
    sim.RunFor(25_ms);
    EXPECT_TRUE(expired);
    EXPECT_TRUE(dog.Expired());
}

TEST(Watchdog, StaysQuietWhileDecisionsFlow)
{
    Simulator sim;
    bool expired = false;
    Watchdog dog(sim, 20_ms, 1_ms, [&] { expired = true; });
    dog.Arm();

    // A "healthy agent" producing a decision every 5 ms.
    sim.Spawn([](Simulator& s, Watchdog& d) -> Task<> {
        for (int i = 0; i < 20; ++i) {
            co_await s.Delay(5_ms);
            d.NoteDecision();
        }
    }(sim, dog));
    sim.RunFor(100_ms);
    EXPECT_FALSE(expired);
}

TEST(Watchdog, DisarmSuppressesExpiry)
{
    Simulator sim;
    bool expired = false;
    Watchdog dog(sim, 20_ms, 1_ms, [&] { expired = true; });
    dog.Arm();
    sim.RunFor(5_ms);
    dog.Disarm();  // planned upgrade
    sim.RunFor(100_ms);
    EXPECT_FALSE(expired);
}

TEST(Watchdog, KillsAndAllowsRestart)
{
    // Integration: watchdog kills a stuck agent; a replacement starts.
    RuntimeFixture f;
    int healthy_iters = 0;

    /** An agent that wedges: stops polling after 3 iterations. */
    class WedgingAgent : public Agent {
      public:
        std::string Name() const override { return "wedging-agent"; }
        Task<>
        Run(AgentContext& ctx) override
        {
            for (int i = 0; i < 3; ++i) {
                co_await ctx.Sim().Delay(1_ms);
            }
            // Wedge: never poll StopRequested again, just idle forever.
            for (;;) {
                co_await ctx.Sim().Delay(1000_ms);
            }
        }
    };

    const AgentId stuck = f.runtime.StartWaveAgent(
        std::make_shared<WedgingAgent>(), 0);

    bool restarted = false;
    Watchdog dog(f.sim, 20_ms, 1_ms, [&] {
        f.runtime.KillWaveAgent(stuck);
        f.runtime.StartWaveAgent(
            std::make_shared<CountingAgent>(healthy_iters), 0);
        restarted = true;
    });
    dog.Arm();

    f.sim.RunFor(50_ms);
    EXPECT_TRUE(restarted);
    EXPECT_GT(healthy_iters, 0) << "replacement agent did not run";
}

TEST(ShmQueue, DeliversWithCoherentCosts)
{
    Simulator sim;
    ShmQueue queue(sim, 16);

    sim.Spawn([](Simulator& s, ShmQueue& q) -> Task<> {
        std::vector<api::Bytes> batch;
        batch.push_back(Payload(3));
        const auto t0 = s.Now();
        co_await q.Send(batch);
        const auto send_cost = s.Now() - t0;
        EXPECT_LT(send_cost, 100u) << "shared-memory send must be cheap";

        auto got = co_await q.Poll();
        CO_ASSERT(got.has_value());
        EXPECT_EQ(PayloadValue(*got), 3u);
        EXPECT_FALSE((co_await q.Poll()).has_value());
    }(sim, queue));
    sim.Run();
}

TEST(ShmQueue, RespectsCapacity)
{
    Simulator sim;
    ShmQueue queue(sim, 2);

    sim.Spawn([](ShmQueue& q) -> Task<> {
        std::vector<api::Bytes> batch;
        for (std::uint64_t i = 0; i < 5; ++i) batch.push_back(Payload(i));
        EXPECT_EQ(co_await q.Send(batch), 2u);
    }(queue));
    sim.Run();
}

}  // namespace
}  // namespace wave

namespace wave {
namespace {

TEST(Runtime, DmaQueueCreationAndUse)
{
    RuntimeFixture f;
    auto queue = f.runtime.CreateDmaQueue(
        channel::QueueConfig{.capacity = 32, .payload_size = 48},
        pcie::DmaInitiator::kNic);

    f.sim.Spawn([](RuntimeFixture& fx,
                   channel::DmaQueue& q) -> sim::Task<> {
        std::vector<api::Bytes> batch;
        batch.push_back(Payload(5, 48));
        EXPECT_EQ(co_await q.Send(batch, /*sync=*/true), 1u);
        auto got = co_await q.Poll();
        CO_ASSERT(got.has_value());
        EXPECT_EQ(PayloadValue(*got), 5u);
        (void)fx;
    }(f, *queue));
    f.sim.Run();
}

TEST(Runtime, DramExhaustionIsAFatalConfigError)
{
    Simulator sim;
    machine::Machine machine(sim);
    // A tiny 8 KiB window fits one small queue but not two.
    WaveRuntime runtime(sim, machine, pcie::PcieConfig{},
                        OptimizationConfig::Full(), /*nic_dram_bytes=*/8192);
    auto first = runtime.CreateHostToNicQueue(
        channel::QueueConfig{.capacity = 64, .payload_size = 48});
    EXPECT_DEATH(
        {
            auto second = runtime.CreateHostToNicQueue(
                channel::QueueConfig{.capacity = 64, .payload_size = 48});
            (void)second;
        },
        "NIC DRAM window exhausted");
}

}  // namespace
}  // namespace wave
