/**
 * @file
 * The protocol state-machine verifier (check/protocol.h).
 *
 * Three layers of coverage:
 *
 *   1. Hook-level seeded bugs: drive the checker directly with event
 *      sequences that break one rule each — double commit, seqnum
 *      regression, barrier skip, stale-view commit, phantom message,
 *      outcome misuse — and pin down the reported kind plus the
 *      two-site attribution (the tripping action AND the earlier
 *      conflicting action).
 *
 *   2. Real-component seeded bugs: misuses the shipped endpoints the
 *      way a buggy deployment would — two agents sharing one decision
 *      queue, a host reporting an outcome twice, a watchdog whose
 *      expiry is ignored — and checks the instrumentation already wired
 *      into those components catches it without test-side hooks.
 *
 *   3. Clean end-to-end runs: a full enclave (both the offloaded Wave
 *      transport and the on-host shm baseline) runs under the checker
 *      with zero violations while the stats prove the hooks fired.
 */
#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "check/protocol.h"
#include "check/hb.h"
#include "ghost/enclave.h"
#include "machine/machine.h"
#include "sched/fifo.h"
#include "sim/simulator.h"
#include "wave/runtime.h"
#include "wave/txn.h"
#include "wave/watchdog.h"

namespace wave {
namespace {

using namespace sim::time_literals;
using check::Domain;
using check::ProtocolChecker;
using check::ProtocolViolationKind;
using check::TaskShadow;

constexpr const void* kScope = &kScope;  // any stable address works

// --- 1. Hook-level seeded bugs ---------------------------------------

TEST(ProtocolChecker, CleanTxnLifecycleReportsNothing)
{
    sim::Simulator sim;
    ProtocolChecker checker(sim);

    checker.OnTxnCreated(kScope, 7, Domain::kNic, "create");
    checker.OnTxnPublished(kScope, 7, Domain::kNic, "publish");
    checker.OnTxnDelivered(kScope, 7, Domain::kHost, "deliver");
    checker.OnTxnOutcome(kScope, 7, Domain::kHost, "outcome");
    checker.OnTxnOutcomeObserved(kScope, 7, Domain::kNic, "observe");

    EXPECT_TRUE(checker.Violations().empty());
    EXPECT_EQ(checker.Stats().txns_created, 1u);
    EXPECT_EQ(checker.Stats().outcomes_observed, 1u);
}

TEST(ProtocolChecker, DoubleCommitReportsBothSites)
{
    sim::Simulator sim;
    ProtocolChecker checker(sim);

    checker.OnTxnCreated(kScope, 7, Domain::kNic, "create");
    checker.OnTxnPublished(kScope, 7, Domain::kNic, "first-commit");
    checker.OnTxnPublished(kScope, 7, Domain::kNic, "second-commit");

    ASSERT_EQ(checker.Violations().size(), 1u);
    const auto& v = checker.Violations().front();
    EXPECT_EQ(v.kind, ProtocolViolationKind::kDoubleCommit);
    EXPECT_STREQ(v.current.label, "second-commit");
    EXPECT_STREQ(v.previous.label, "first-commit");
    EXPECT_EQ(v.current.id, 7u);
}

TEST(ProtocolChecker, SeqnumRegressionReportsBothSites)
{
    sim::Simulator sim;
    ProtocolChecker checker(sim);

    for (std::uint64_t seq = 0; seq < 3; ++seq) {
        checker.OnStreamSend(kScope, seq, Domain::kHost, "send");
    }
    checker.OnStreamRecv(kScope, 0, Domain::kNic, "recv-0");
    checker.OnStreamRecv(kScope, 1, Domain::kNic, "recv-1");
    // SEEDED BUG: the consumer re-reads an already-consumed slot — the
    // agent would double-process message 0.
    checker.OnStreamRecv(kScope, 0, Domain::kNic, "recv-again");

    ASSERT_EQ(checker.Violations().size(), 1u);
    const auto& v = checker.Violations().front();
    EXPECT_EQ(v.kind, ProtocolViolationKind::kSeqnumRegression);
    EXPECT_STREQ(v.current.label, "recv-again");
    EXPECT_STREQ(v.previous.label, "recv-1");
}

TEST(ProtocolChecker, BarrierSkipReportsGapThenResyncs)
{
    sim::Simulator sim;
    ProtocolChecker checker(sim);

    for (std::uint64_t seq = 0; seq < 4; ++seq) {
        checker.OnStreamSend(kScope, seq, Domain::kHost, "send");
    }
    checker.OnStreamRecv(kScope, 0, Domain::kNic, "recv-0");
    // SEEDED BUG: the consumer accepted seqnum 2 without 1 — a decision
    // made now would skip the message barrier.
    checker.OnStreamRecv(kScope, 2, Domain::kNic, "recv-skip");

    ASSERT_EQ(checker.Violations().size(), 1u);
    const auto& v = checker.Violations().front();
    EXPECT_EQ(v.kind, ProtocolViolationKind::kBarrierSkip);
    EXPECT_STREQ(v.current.label, "recv-skip");
    EXPECT_STREQ(v.previous.label, "recv-0");

    // One gap, one report: the stream resyncs and continues clean.
    checker.OnStreamRecv(kScope, 3, Domain::kNic, "recv-3");
    EXPECT_EQ(checker.Violations().size(), 1u);
}

TEST(ProtocolChecker, PhantomMessageIsReported)
{
    sim::Simulator sim;
    ProtocolChecker checker(sim);

    checker.OnStreamSend(kScope, 0, Domain::kHost, "send");
    // SEEDED BUG: the consumer accepted a seqnum nobody ever sent (a
    // stale generation flag read as valid).
    checker.OnStreamRecv(kScope, 5, Domain::kNic, "recv-phantom");

    ASSERT_EQ(checker.Violations().size(), 1u);
    EXPECT_EQ(checker.Violations().front().kind,
              ProtocolViolationKind::kPhantomMessage);
}

TEST(ProtocolChecker, StaleViewCommitReportsBothSites)
{
    sim::Simulator sim;
    ProtocolChecker checker(sim);

    checker.OnTaskState(kScope, 4, TaskShadow::kBlocked, "blocked-at");
    // SEEDED BUG: the host reports kCommitted for a run decision whose
    // target its own state machine says is blocked — the atomic commit
    // should have failed this transaction.
    checker.OnCommitDecision(kScope, /*txn_id=*/9, /*tid=*/4,
                             /*run_decision=*/true, /*committed=*/true,
                             "stale-commit");

    ASSERT_EQ(checker.Violations().size(), 1u);
    const auto& v = checker.Violations().front();
    EXPECT_EQ(v.kind, ProtocolViolationKind::kStaleViewCommit);
    EXPECT_STREQ(v.current.label, "stale-commit");
    EXPECT_STREQ(v.previous.label, "blocked-at");
}

TEST(ProtocolChecker, DoubleClaimIsReported)
{
    sim::Simulator sim;
    ProtocolChecker checker(sim);

    checker.OnTaskState(kScope, 4, TaskShadow::kRunnable, "wake");
    checker.OnCommitDecision(kScope, 1, 4, true, true, "first-commit");
    // SEEDED BUG: a second committed decision schedules the same thread
    // while the checker's shadow still has it running.
    checker.OnCommitDecision(kScope, 2, 4, true, true, "second-commit");

    ASSERT_EQ(checker.Violations().size(), 1u);
    const auto& v = checker.Violations().front();
    EXPECT_EQ(v.kind, ProtocolViolationKind::kDoubleClaim);
    EXPECT_STREQ(v.previous.label, "first-commit");
}

TEST(ProtocolChecker, IdleAndFailedCommitsAreNotValidated)
{
    sim::Simulator sim;
    ProtocolChecker checker(sim);

    checker.OnTaskState(kScope, 4, TaskShadow::kBlocked, "blocked-at");
    checker.OnCommitDecision(kScope, 1, -1, /*run_decision=*/false,
                             /*committed=*/true, "idle");
    checker.OnCommitDecision(kScope, 2, 4, /*run_decision=*/true,
                             /*committed=*/false, "failed");

    EXPECT_TRUE(checker.Violations().empty());
    EXPECT_EQ(checker.Stats().commits_checked, 2u);
}

TEST(ProtocolChecker, OutcomeMisuseIsReported)
{
    sim::Simulator sim;
    ProtocolChecker checker(sim);

    checker.OnTxnCreated(kScope, 7, Domain::kNic, "create");
    checker.OnTxnPublished(kScope, 7, Domain::kNic, "publish");
    // SEEDED BUG: outcome reported before the host ever polled the txn.
    checker.OnTxnOutcome(kScope, 7, Domain::kHost, "early-outcome");
    ASSERT_EQ(checker.Violations().size(), 1u);
    EXPECT_EQ(checker.Violations().front().kind,
              ProtocolViolationKind::kOutcomeBeforeDelivery);

    // SEEDED BUG: outcome for a txn id that was never created.
    checker.OnTxnOutcome(kScope, 99, Domain::kHost, "phantom-outcome");
    ASSERT_EQ(checker.Violations().size(), 2u);
    EXPECT_EQ(checker.Violations().back().kind,
              ProtocolViolationKind::kPhantomOutcome);
}

TEST(ProtocolChecker, IndependentScopesDoNotAlias)
{
    sim::Simulator sim;
    ProtocolChecker checker(sim);
    const int scope_a = 0;
    const int scope_b = 0;

    // Same txn id and same seqnums on two different queues: fine.
    checker.OnTxnCreated(&scope_a, 1, Domain::kNic, "a");
    checker.OnTxnCreated(&scope_b, 1, Domain::kNic, "b");
    checker.OnStreamSend(&scope_a, 0, Domain::kHost, "a");
    checker.OnStreamSend(&scope_b, 0, Domain::kHost, "b");
    checker.OnStreamRecv(&scope_a, 0, Domain::kNic, "a");
    checker.OnStreamRecv(&scope_b, 0, Domain::kNic, "b");

    EXPECT_TRUE(checker.Violations().empty());
}

// --- 2. Real-component seeded bugs -----------------------------------

/** A machine with a Wave runtime whose checkers are on. */
struct TxnWorld {
    sim::Simulator sim;
    machine::Machine machine{sim};
    WaveRuntime runtime{sim, machine, pcie::PcieConfig{},
                        api::OptimizationConfig::Full()};
    NicToHostChannel decisions;
    HostToNicChannel outcomes;

    TxnWorld()
    {
        channel::QueueConfig qc;
        qc.payload_size = 32;
        decisions = runtime.CreateNicToHostQueue(qc);
        outcomes = runtime.CreateHostToNicQueue(qc);
    }

    api::Bytes
    Payload() const
    {
        return api::Bytes(8);
    }
};

TEST(ProtocolChecker, TwoAgentsClaimingOneQueueAreReported)
{
    TxnWorld w;
    // SEEDED BUG: two agent-side endpoints share one decision queue
    // (e.g. a restarted agent whose predecessor was not fully killed).
    // Both allocate txn ids from their own counter, so both claim id 1.
    NicTxnEndpoint first(*w.decisions.nic, *w.outcomes.nic, nullptr);
    NicTxnEndpoint second(*w.decisions.nic, *w.outcomes.nic, nullptr);
    first.AttachProtocol(w.runtime.Protocol());
    second.AttachProtocol(w.runtime.Protocol());

    first.TxnCreate(w.Payload());
    second.TxnCreate(w.Payload());

    const auto& violations = w.runtime.Protocol()->Violations();
    ASSERT_EQ(violations.size(), 1u);
    EXPECT_EQ(violations.front().kind,
              ProtocolViolationKind::kTxnClaimedTwice);
    EXPECT_STREQ(violations.front().current.label,
                 "NicTxnEndpoint::TxnCreate");
    EXPECT_STREQ(violations.front().previous.label,
                 "NicTxnEndpoint::TxnCreate");
}

sim::Task<>
CommitAndReportTwice(NicTxnEndpoint& nic, HostTxnEndpoint& host,
                     api::TxnId txn)
{
    co_await nic.TxnsCommit(/*send_msix=*/false);
    auto delivered = co_await host.PollTxns(/*flush_first=*/true);
    EXPECT_TRUE(delivered.has_value());
    if (!delivered) co_return;
    EXPECT_EQ(delivered->id, txn);
    const std::vector<api::TxnOutcome> outcome{
        {txn, api::TxnStatus::kCommitted}};
    co_await host.SetTxnsOutcomes(outcome);
    // SEEDED BUG: the host reports the same outcome again (e.g. a
    // retry after a spurious kick).
    co_await host.SetTxnsOutcomes(outcome);
}

TEST(ProtocolChecker, DuplicateOutcomeThroughRealEndpoints)
{
    TxnWorld w;
    NicTxnEndpoint agent(*w.decisions.nic, *w.outcomes.nic, nullptr);
    HostTxnEndpoint host(*w.decisions.host, *w.outcomes.host, nullptr);
    agent.AttachProtocol(w.runtime.Protocol());
    host.AttachProtocol(w.runtime.Protocol());

    const api::TxnId id = agent.TxnCreate(w.Payload());
    w.sim.Spawn(CommitAndReportTwice(agent, host, id));
    w.sim.Run();

    const auto& violations = w.runtime.Protocol()->Violations();
    ASSERT_EQ(violations.size(), 1u);
    EXPECT_EQ(violations.front().kind,
              ProtocolViolationKind::kDuplicateOutcome);
    EXPECT_STREQ(violations.front().current.label,
                 "HostTxnEndpoint::SetTxnsOutcomes");
}

TEST(ProtocolChecker, CommitAfterWatchdogTimeoutIsReported)
{
    sim::Simulator sim;
    ProtocolChecker checker(sim);

    // SEEDED BUG: this watchdog's expiry reaction neither kills the
    // agent nor falls back (§3.3) — it does nothing — so the agent's
    // decisions keep being accepted as liveness evidence after expiry.
    Watchdog dog(sim, /*timeout=*/1_ms, /*check_interval=*/100_us,
                 /*on_expire=*/[] {});
    dog.AttachProtocol(&checker);
    dog.Arm();
    sim.RunFor(5_ms);
    ASSERT_TRUE(dog.Expired());

    dog.NoteDecision();

    ASSERT_EQ(checker.Violations().size(), 1u);
    const auto& v = checker.Violations().front();
    EXPECT_EQ(v.kind, ProtocolViolationKind::kCommitAfterTimeout);
    EXPECT_STREQ(v.current.label, "Watchdog::NoteDecision");
    EXPECT_STREQ(v.previous.label, "Watchdog::Monitor");
}

TEST(ProtocolChecker, RearmedWatchdogAcceptsDecisionsAgain)
{
    sim::Simulator sim;
    ProtocolChecker checker(sim);

    Watchdog dog(sim, 1_ms, 100_us, [] {});
    dog.AttachProtocol(&checker);
    dog.Arm();
    sim.RunFor(5_ms);
    ASSERT_TRUE(dog.Expired());

    // The proper §3.3 reaction: restart the agent, re-arm, move on.
    dog.Arm();
    dog.NoteDecision();

    EXPECT_TRUE(checker.Violations().empty());
    EXPECT_EQ(checker.Stats().watchdog_feeds, 1u);
}

// --- 3. Clean end-to-end runs ----------------------------------------

/** Busy worker that yields after fixed work. */
class Yielder : public ghost::ThreadBody {
  public:
    sim::Task<ghost::RunStop>
    Run(ghost::RunContext& ctx) override
    {
        co_await ctx.interrupt.SleepInterruptible(5_us);
        co_return ghost::RunStop::kYielded;
    }
};

void
RunCleanEnclave(bool offloaded)
{
    sim::Simulator sim;
    machine::Machine machine(sim);
    WaveRuntime runtime(sim, machine, pcie::PcieConfig{},
                        api::OptimizationConfig::Full());

    ghost::EnclaveConfig config;
    config.cores = {0, 1};
    config.nic_core = 0;
    config.offloaded = offloaded;
    config.host_agent_core = 2;
    config.policy_factory = [] {
        return std::make_shared<sched::FifoPolicy>();
    };
    ghost::Enclave enclave(runtime, config);
    for (ghost::Tid tid = 1; tid <= 4; ++tid) {
        enclave.AddThread(tid, std::make_shared<Yielder>());
    }
    enclave.Start();
    sim.RunFor(2_ms);

    ProtocolChecker* protocol = runtime.Protocol();
    ASSERT_NE(protocol, nullptr);
    for (const auto& v : protocol->Violations()) {
        ADD_FAILURE() << v.Describe();
    }
    // The run must actually have exercised the shadow machines.
    EXPECT_GT(protocol->Stats().txns_created, 0u);
    EXPECT_GT(protocol->Stats().outcomes_observed, 0u);
    EXPECT_GT(protocol->Stats().stream_recvs, 0u);
    EXPECT_GT(protocol->Stats().commits_checked, 0u);
    EXPECT_GT(protocol->Stats().task_transitions, 0u);
    EXPECT_GT(protocol->Stats().watchdog_feeds, 0u);

    check::HbRaceDetector* hb = runtime.Hb();
    ASSERT_NE(hb, nullptr);
    for (const auto& race : hb->Races()) {
        ADD_FAILURE() << race.Describe();
    }
    EXPECT_GT(hb->Stats().releases, 0u);
    EXPECT_GT(hb->Stats().acquires, 0u);
}

TEST(ProtocolChecker, CleanEndToEndOffloaded) { RunCleanEnclave(true); }

TEST(ProtocolChecker, CleanEndToEndOnHostShm) { RunCleanEnclave(false); }

TEST(ProtocolChecker, FailFastPanicsOnFirstViolation)
{
    sim::Simulator sim;
    ProtocolChecker checker(sim);
    checker.SetFailFast(true);

    checker.OnTxnCreated(kScope, 7, Domain::kNic, "create");
    checker.OnTxnPublished(kScope, 7, Domain::kNic, "publish");
    EXPECT_DEATH(
        checker.OnTxnPublished(kScope, 7, Domain::kNic, "publish-again"),
        "protocol violation");
}

}  // namespace
}  // namespace wave
