/**
 * @file
 * Tests for scheduling enclaves (§6) and the CFS-lite baseline policy:
 * partition isolation, watchdog-driven agent restart with state
 * re-pull, multi-enclave coexistence, and CFS fairness invariants.
 */
#include <gtest/gtest.h>

#include "ghost/enclave.h"
#include "ghost/kernel.h"
#include "ghost/transport.h"
#include "machine/machine.h"
#include "sched/cfs_lite.h"
#include "sched/fifo.h"
#include "sched/vm_policy.h"
#include "workload/busy_loop.h"
#include "sim/simulator.h"
#include "wave/runtime.h"

namespace wave::ghost {
namespace {

using namespace sim::time_literals;
using sim::Simulator;
using sim::Task;

/** Worker that yields after fixed work, counting completions. */
class YieldingWorker : public ThreadBody {
  public:
    YieldingWorker(sim::DurationNs work, int& completions)
        : work_(work), completions_(completions)
    {
    }

    Task<RunStop>
    Run(RunContext& ctx) override
    {
        sim::DurationNs remaining = work_;
        while (remaining > 0) {
            const auto ran =
                co_await ctx.interrupt.SleepInterruptible(remaining);
            remaining -= std::min(ran, remaining);
            if (remaining > 0) co_return RunStop::kPreempted;
        }
        ++completions_;
        co_return RunStop::kYielded;
    }

  private:
    sim::DurationNs work_;
    int& completions_;
};

struct EnclaveWorld {
    EnclaveWorld()
        : machine(sim),
          runtime(sim, machine, pcie::PcieConfig{},
                  api::OptimizationConfig::Full())
    {
    }

    EnclaveConfig
    MakeConfig(std::vector<int> cores, int nic_core)
    {
        EnclaveConfig config;
        config.cores = std::move(cores);
        config.nic_core = nic_core;
        config.policy_factory = [] {
            return std::make_shared<sched::FifoPolicy>();
        };
        return config;
    }

    Simulator sim;
    machine::Machine machine;
    WaveRuntime runtime;
};

TEST(Enclave, TwoEnclavesScheduleIndependently)
{
    EnclaveWorld world;
    Enclave left(world.runtime, world.MakeConfig({0, 1}, 0));
    Enclave right(world.runtime, world.MakeConfig({2, 3}, 1));

    int left_done = 0;
    int right_done = 0;
    for (Tid tid = 1; tid <= 4; ++tid) {
        left.AddThread(tid,
                       std::make_shared<YieldingWorker>(5_us, left_done));
        right.AddThread(100 + tid, std::make_shared<YieldingWorker>(
                                       5_us, right_done));
    }
    left.Start();
    right.Start();
    world.sim.RunFor(2_ms);

    EXPECT_GT(left_done, 100) << "left enclave must make progress";
    EXPECT_GT(right_done, 100) << "right enclave must make progress";
    EXPECT_TRUE(left.AgentAlive());
    EXPECT_TRUE(right.AgentAlive());
}

TEST(Enclave, WatchdogRestartsWedgedAgentAndReannouncesThreads)
{
    EnclaveWorld world;
    Enclave enclave(world.runtime, world.MakeConfig({0, 1}, 0));

    int completions = 0;
    for (Tid tid = 1; tid <= 6; ++tid) {
        enclave.AddThread(
            tid, std::make_shared<YieldingWorker>(10_us, completions));
    }
    enclave.Start();
    ASSERT_EQ(enclave.Generation(), 1);
    world.sim.RunFor(5_ms);
    const int before = completions;
    EXPECT_GT(before, 0);

    // Wedge generation 1 behind the watchdog's back.
    world.runtime.KillWaveAgent(0);
    world.sim.RunFor(40_ms);  // > 20 ms watchdog timeout

    EXPECT_GE(enclave.Generation(), 2) << "watchdog must have restarted";
    EXPECT_TRUE(enclave.AgentAlive());
    world.sim.RunFor(10_ms);
    EXPECT_GT(completions, before)
        << "replacement agent must schedule the re-announced threads";
}

TEST(Enclave, OtherEnclaveUnaffectedByNeighborRestart)
{
    EnclaveWorld world;
    Enclave left(world.runtime, world.MakeConfig({0, 1}, 0));
    Enclave right(world.runtime, world.MakeConfig({2, 3}, 1));

    int left_done = 0;
    int right_done = 0;
    for (Tid tid = 1; tid <= 4; ++tid) {
        left.AddThread(tid,
                       std::make_shared<YieldingWorker>(10_us, left_done));
        right.AddThread(100 + tid, std::make_shared<YieldingWorker>(
                                       10_us, right_done));
    }
    left.Start();
    right.Start();
    world.sim.RunFor(2_ms);

    world.runtime.KillWaveAgent(0);  // wedge the left agent
    world.sim.RunFor(40_ms);

    EXPECT_GE(left.Generation(), 2);
    EXPECT_EQ(right.Generation(), 1)
        << "the right enclave must not be restarted";
    EXPECT_TRUE(right.AgentAlive());
    EXPECT_GT(right_done, 1000)
        << "the right enclave never stopped scheduling";
}

}  // namespace
}  // namespace wave::ghost

namespace wave::sched {
namespace {

using ghost::GhostMessage;
using ghost::MsgType;
using ghost::Tid;

GhostMessage
Msg(MsgType type, Tid tid, std::uint64_t at = 0)
{
    GhostMessage m{};
    m.type = type;
    m.tid = tid;
    m.core = 0;
    m.payload = at;  // event timestamp, used for vruntime charging
    return m;
}

TEST(CfsLite, PicksLowestVruntimeFirst)
{
    CfsLitePolicy policy;
    policy.OnMessage(Msg(MsgType::kThreadCreated, 1));
    policy.OnMessage(Msg(MsgType::kThreadCreated, 2));

    // Thread 1 runs 2 ms then yields; thread 2 has lower vruntime now.
    auto d = policy.PickNext(0, sim::TimeNs{0});
    ASSERT_TRUE(d.has_value());
    ASSERT_EQ(d->tid, 1);
    policy.OnMessage(Msg(MsgType::kThreadYield, 1, 2'000'000));
    EXPECT_EQ(policy.PickNext(0, sim::TimeNs{2'000'000})->tid, 2);
}

TEST(CfsLite, SliceShrinksWithLoad)
{
    CfsLitePolicy policy(/*sched_latency=*/6'000'000,
                         /*min_granularity=*/750'000);
    policy.OnMessage(Msg(MsgType::kThreadCreated, 1));
    EXPECT_EQ(policy.CurrentSlice(), 6'000'000u);
    for (Tid tid = 2; tid <= 4; ++tid) {
        policy.OnMessage(Msg(MsgType::kThreadCreated, tid));
    }
    EXPECT_EQ(policy.CurrentSlice(), 1'500'000u);
    for (Tid tid = 5; tid <= 20; ++tid) {
        policy.OnMessage(Msg(MsgType::kThreadCreated, tid));
    }
    EXPECT_EQ(policy.CurrentSlice(), 750'000u) << "min granularity floor";
}

TEST(CfsLite, HeavierThreadsAgeSlower)
{
    CfsLitePolicy policy;
    policy.SetWeight(1, 2048);  // double weight
    policy.OnMessage(Msg(MsgType::kThreadCreated, 1));
    policy.OnMessage(Msg(MsgType::kThreadCreated, 2));

    // Both run 2 ms each.
    auto first = policy.PickNext(0, sim::TimeNs{0});
    ASSERT_TRUE(first.has_value());
    policy.OnMessage(Msg(MsgType::kThreadYield, first->tid, 2'000'000));
    auto second = policy.PickNext(0, sim::TimeNs{2'000'000});
    ASSERT_TRUE(second.has_value());
    EXPECT_NE(second->tid, first->tid);
    policy.OnMessage(Msg(MsgType::kThreadYield, second->tid, 4'000'000));

    EXPECT_LT(policy.Vruntime(1), policy.Vruntime(2))
        << "the weighted thread accrues vruntime at half rate";
}

TEST(CfsLite, PreemptsOnlyPastTheFairSlice)
{
    CfsLitePolicy policy(6'000'000, 750'000);
    policy.OnMessage(Msg(MsgType::kThreadCreated, 1));
    ASSERT_TRUE(policy.PickNext(0, sim::TimeNs{0}).has_value());
    policy.OnMessage(Msg(MsgType::kThreadCreated, 2));
    // One waiter: slice = 6 ms.
    EXPECT_FALSE(policy.ShouldPreempt(0, 1, 3'000'000));
    EXPECT_TRUE(policy.ShouldPreempt(0, 1, 7'000'000));
}

TEST(CfsLite, FairnessOverManyRounds)
{
    // Two equal threads alternating must split CPU ~evenly.
    CfsLitePolicy policy;
    policy.OnMessage(Msg(MsgType::kThreadCreated, 1));
    policy.OnMessage(Msg(MsgType::kThreadCreated, 2));

    std::uint64_t ran[3] = {0, 0, 0};
    std::uint64_t now = 0;
    for (int round = 0; round < 100; ++round) {
        auto d = policy.PickNext(0, sim::TimeNs{now});
        ASSERT_TRUE(d.has_value());
        // Uneven bursts: tid 1 runs 3 ms at a time, tid 2 runs 1 ms.
        const std::uint64_t burst =
            d->tid == 1 ? 3'000'000 : 1'000'000;
        now += burst;
        ran[d->tid] += burst;
        policy.OnMessage(Msg(MsgType::kThreadYield, d->tid, now));
    }
    const double ratio = static_cast<double>(ran[1]) /
                         static_cast<double>(ran[2]);
    EXPECT_NEAR(ratio, 1.0, 0.15)
        << "equal-weight threads must receive ~equal CPU";
}

TEST(CfsLite, DeadThreadsLeaveTheQueue)
{
    CfsLitePolicy policy;
    policy.OnMessage(Msg(MsgType::kThreadCreated, 1));
    policy.OnMessage(Msg(MsgType::kThreadCreated, 2));
    policy.OnMessage(Msg(MsgType::kThreadDead, 1));
    auto d = policy.PickNext(0, sim::TimeNs{0});
    ASSERT_TRUE(d.has_value());
    EXPECT_EQ(d->tid, 2);
    EXPECT_FALSE(policy.PickNext(0, sim::TimeNs{0}).has_value());
}

}  // namespace
}  // namespace wave::sched

namespace wave::ghost {
namespace {

/** Busy body that tracks its accumulated run time. */
class MeteredBusyBody : public ThreadBody {
  public:
    Task<RunStop>
    Run(RunContext& ctx) override
    {
        for (;;) {
            const auto ran =
                co_await ctx.interrupt.SleepInterruptible(500'000);
            ran_ns_ += ran;
            if (ctx.interrupt.Pending()) co_return RunStop::kPreempted;
        }
    }

    sim::DurationNs RanNs() const { return ran_ns_; }

  private:
    sim::DurationNs ran_ns_ = 0;
};

TEST(CfsLiteEndToEnd, TwoBusyThreadsShareACoreFairly)
{
    // Full stack: CFS-lite inside a Wave agent, preempting via MSI-X at
    // its fair slice, must split one core ~50/50 between two hogs.
    EnclaveWorld world;
    EnclaveConfig config;
    config.cores = {0};
    config.nic_core = 0;
    config.watchdog_timeout_ns = 0;  // irrelevant here
    config.policy_factory = [] {
        return std::make_shared<sched::CfsLitePolicy>(
            /*sched_latency=*/2'000'000, /*min_granularity=*/500'000);
    };
    Enclave enclave(world.runtime, config);

    auto a = std::make_shared<MeteredBusyBody>();
    auto b = std::make_shared<MeteredBusyBody>();
    enclave.AddThread(1, a);
    enclave.AddThread(2, b);
    enclave.Start();
    world.sim.RunFor(100'000'000);  // 100 ms

    const double total =
        (a->RanNs() + b->RanNs()).ToDouble();
    EXPECT_GT(total, 80'000'000.0) << "the core must be mostly busy";
    const double share_a = a->RanNs().ToDouble() / total;
    EXPECT_NEAR(share_a, 0.5, 0.1)
        << "equal-weight threads split the core evenly";
    EXPECT_GT(enclave.Kernel().Stats().preemptions, 20u)
        << "sharing happens through slice preemptions";
}

}  // namespace
}  // namespace wave::ghost

namespace wave::ghost {
namespace {

using wave::workload::BusyLoopBody;
using wave::workload::IdleVcpuBody;

/** Mini Figure 5: ticks steal cycles from a busy vCPU. */
TEST(VmScheduling, TicklessVcpuGetsMoreCycles)
{
    auto run = [](bool ticks) {
        sim::Simulator sim;
        machine::Machine machine(sim);
        WaveRuntime runtime(sim, machine, pcie::PcieConfig{},
                            api::OptimizationConfig::Full());
        WaveSchedTransport transport(runtime, 4);
        KernelOptions options;
        options.timer_ticks = ticks;
        KernelSched kernel(sim, machine, transport, GhostCosts{},
                           options);
        auto policy = std::make_shared<sched::VmPolicy>();
        AgentConfig cfg;
        cfg.cores = {0, 1, 2, 3};
        cfg.prestage = false;
        auto agent =
            std::make_shared<GhostAgent>(transport, policy, cfg);
        runtime.StartWaveAgent(agent, 0);

        auto busy = std::make_shared<BusyLoopBody>();
        policy->PinVcpu(1, 0);
        kernel.AddThread(1, busy);
        for (Tid tid = 2; tid <= 4; ++tid) {
            policy->PinVcpu(tid, tid - 1);
            kernel.AddThread(tid, std::make_shared<IdleVcpuBody>());
        }
        kernel.Start({0, 1, 2, 3});
        sim.RunFor(50'000'000);  // 50 ms
        return std::pair{busy->BusyNs(),
                         kernel.Stats().ticks_handled};
    };

    const auto [ticked_ns, ticks_handled] = run(true);
    const auto [tickless_ns, no_ticks_handled] = run(false);
    EXPECT_GT(ticks_handled, 100u) << "4 cores x 50 ticks each";
    EXPECT_EQ(no_ticks_handled, 0u);
    EXPECT_GT(tickless_ns, ticked_ns)
        << "tick handling must visibly steal vCPU cycles";
    // The loss should be in the ~1-2% ballpark (12.6 us per 1 ms).
    const double loss = 1.0 - ticked_ns.ToDouble() /
                                  tickless_ns.ToDouble();
    EXPECT_NEAR(loss, 0.0126, 0.008);
}

}  // namespace
}  // namespace wave::ghost
