/**
 * @file
 * End-to-end tests for tools/wave_analyze.
 *
 * Two halves:
 *  - planted-violation fixtures under tests/analyze_fixtures/, one per
 *    rule W001..W008, W101..W106, W201..W206, and the cross-TU
 *    W301..W305 (the W302/W305 fixtures are two-file pairs analyzed in
 *    one invocation), each asserted to trip exactly the rule it plants
 *    (plus suppression, region-scoping, JSON/stale-baseline, and
 *    clean-file fixtures);
 *  - a clean-tree run over the real src/ with the shipped baseline,
 *    asserted to report zero violations — the same invocation the
 *    `analyze` build target and CI run.
 *
 * Unit tests for the symbol-graph builder itself (overload sets,
 * shadowed names, out-of-line members, anonymous namespaces) live in
 * analyze_graph_test.cc, which links the wave_analyze_core library
 * directly.
 *
 * The analyzer binary location and the repo root are injected by CMake
 * as WAVE_ANALYZE_BIN / WAVE_SOURCE_ROOT compile definitions.
 */
// wave-domain: harness
#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <string>

#ifndef WAVE_ANALYZE_BIN
#error "WAVE_ANALYZE_BIN must be defined by the build"
#endif
#ifndef WAVE_SOURCE_ROOT
#error "WAVE_SOURCE_ROOT must be defined by the build"
#endif

namespace {

struct RunResult {
    int exit_code = -1;
    std::string output;
};

/** Run a shell command, capturing interleaved stdout+stderr. */
RunResult
Exec(const std::string& cmd)
{
    RunResult r;
    const std::string full = cmd + " 2>&1";
    FILE* pipe = popen(full.c_str(), "r");
    if (pipe == nullptr) return r;
    std::array<char, 4096> buf;
    std::size_t n;
    while ((n = fread(buf.data(), 1, buf.size(), pipe)) > 0) {
        r.output.append(buf.data(), n);
    }
    const int status = pclose(pipe);
    if (WIFEXITED(status)) r.exit_code = WEXITSTATUS(status);
    return r;
}

const std::string kBin = WAVE_ANALYZE_BIN;
const std::string kRoot = WAVE_SOURCE_ROOT;
const std::string kFixtures = kRoot + "/tests/analyze_fixtures";

/** Analyze one fixture file in model mode against the real tree. */
RunResult
AnalyzeFixture(const std::string& name)
{
    return Exec(kBin + " --root " + kRoot + " --as-src " + kFixtures +
               "/" + name);
}

/** Planted fixture must trip its rule and exit with findings (1). */
void
ExpectDetected(const std::string& fixture, const std::string& rule)
{
    const RunResult r = AnalyzeFixture(fixture);
    EXPECT_EQ(r.exit_code, 1) << fixture << ":\n" << r.output;
    EXPECT_NE(r.output.find(rule), std::string::npos)
        << fixture << " did not trip " << rule << ":\n"
        << r.output;
}

TEST(AnalyzeFixtures, W001MissingDomain)
{
    ExpectDetected("w001_missing_domain.cc", "W001");
}

TEST(AnalyzeFixtures, W002CrossDomainInclude)
{
    ExpectDetected("w002_cross_include.cc", "W002");
}

TEST(AnalyzeFixtures, W003CrossDomainSymbol)
{
    ExpectDetected("w003_cross_symbol.cc", "W003");
}

TEST(AnalyzeFixtures, W004ActorWithoutDomain)
{
    ExpectDetected("w004_actor_domain.cc", "W004");
}

TEST(AnalyzeFixtures, W005UngatedCheckerCall)
{
    ExpectDetected("w005_hook_gate.cc", "W005");
}

TEST(AnalyzeFixtures, W006StaleWithoutReason)
{
    ExpectDetected("w006_stale_reason.cc", "W006");
}

TEST(AnalyzeFixtures, W007WallClockRng)
{
    ExpectDetected("w007_wall_clock.cc", "W007");
}

TEST(AnalyzeFixtures, W008TimeNarrowing)
{
    ExpectDetected("w008_time_narrowing.cc", "W008");
}

TEST(AnalyzeFixtures, W101HotAllocation)
{
    ExpectDetected("w101_hot_alloc.cc", "W101");
}

TEST(AnalyzeFixtures, W102HotThrow)
{
    ExpectDetected("w102_hot_throw.cc", "W102");
}

TEST(AnalyzeFixtures, W103HotLock)
{
    ExpectDetected("w103_hot_lock.cc", "W103");
}

TEST(AnalyzeFixtures, W104HotHeavyByValue)
{
    ExpectDetected("w104_hot_by_value.cc", "W104");
}

TEST(AnalyzeFixtures, W105HotIo)
{
    ExpectDetected("w105_hot_io.cc", "W105");
}

TEST(AnalyzeFixtures, W106UnbatchedChannelOpInHotLoop)
{
    ExpectDetected("w106_hot_unbatched.cc", "W106");
}

/** Occurrences of @p needle in @p haystack (for finding counts). */
std::size_t
Count(const std::string& haystack, const std::string& needle)
{
    std::size_t n = 0;
    for (std::size_t at = haystack.find(needle); at != std::string::npos;
         at = haystack.find(needle, at + needle.size())) {
        ++n;
    }
    return n;
}

/** Planted fixture must trip its rule exactly once, nothing else. */
void
ExpectDetectedOnce(const std::string& fixture, const std::string& rule)
{
    const RunResult r = AnalyzeFixture(fixture);
    EXPECT_EQ(r.exit_code, 1) << fixture << ":\n" << r.output;
    EXPECT_EQ(Count(r.output, rule + ":"), 1u)
        << fixture << " did not trip " << rule << " exactly once:\n"
        << r.output;
    EXPECT_NE(r.output.find("1 finding"), std::string::npos)
        << fixture << " tripped more than its planted rule:\n"
        << r.output;
}

TEST(AnalyzeFixtures, W201DanglingRefAcrossSuspension)
{
    ExpectDetectedOnce("w201_dangling_ref.cc", "W201");
}

TEST(AnalyzeFixtures, W202CapturingLambdaCoroutine)
{
    ExpectDetectedOnce("w202_lambda_coroutine.cc", "W202");
}

TEST(AnalyzeFixtures, W203SpawnBindsStackReference)
{
    ExpectDetectedOnce("w203_spawn_stack_ref.cc", "W203");
}

TEST(AnalyzeFixtures, W204UnclassifiedSeamFile)
{
    ExpectDetectedOnce("w204_unclassified_seam.cc", "W204");
}

TEST(AnalyzeFixtures, W205PointerKeyedUnorderedIteration)
{
    ExpectDetectedOnce("w205_unordered_ptr_iter.cc", "W205");
}

TEST(AnalyzeFixtures, W206AwaitUnderScopedGuard)
{
    ExpectDetectedOnce("w206_await_under_guard.cc", "W206");
}

/** Two-file fixture pair analyzed in one invocation (cross-TU rules). */
void
ExpectPairDetectedOnce(const std::string& fixture_a,
                       const std::string& fixture_b,
                       const std::string& rule)
{
    const RunResult r =
        Exec(kBin + " --root " + kRoot + " --as-src " + kFixtures +
            "/" + fixture_a + " " + kFixtures + "/" + fixture_b);
    EXPECT_EQ(r.exit_code, 1) << fixture_a << ":\n" << r.output;
    EXPECT_EQ(Count(r.output, rule + ":"), 1u)
        << fixture_a << " did not trip " << rule << " exactly once:\n"
        << r.output;
    EXPECT_NE(r.output.find("1 finding"), std::string::npos)
        << fixture_a << " tripped more than its planted rule:\n"
        << r.output;
}

TEST(AnalyzeFixtures, W101SizedBufferWithMixedCaseName)
{
    // Regression: the sized-buffer pattern only matched snake_case
    // identifiers, so CamelCase locals escaped the rule.
    ExpectDetectedOnce("w101_mixed_case.cc", "W101");
}

TEST(AnalyzeFixtures, W301TransitiveHotReachesColdAllocator)
{
    ExpectDetectedOnce("w301_transitive_alloc.cc", "W301");
}

TEST(AnalyzeFixtures, W302CrossShardMutableStateReference)
{
    ExpectPairDetectedOnce("w302_closure_leak.cc",
                           "w302_closure_leak_b.cc", "W302");
}

TEST(AnalyzeFixtures, W303MutableGlobalWithoutJustification)
{
    ExpectDetectedOnce("w303_mutable_global.cc", "W303");
}

TEST(AnalyzeFixtures, W304DeadLifetimeAnnotation)
{
    ExpectDetectedOnce("w304_dead_annotation.cc", "W304");
}

TEST(AnalyzeFixtures, W305HostCallsNicSymbolDirectly)
{
    ExpectPairDetectedOnce("w305_seam_bypass.cc",
                           "w305_seam_bypass_b.cc", "W305");
}

TEST(AnalyzeFixtures, W301ExplainsTheCallPath)
{
    // The finding must carry the full chain from the hot call site to
    // the allocating sink, not just the endpoints.
    const RunResult r = AnalyzeFixture("w301_transitive_alloc.cc");
    EXPECT_NE(r.output.find("call path: wave::fixture::Acquire -> "
                            "wave::fixture::GrowPool"),
              std::string::npos)
        << r.output;
}

TEST(AnalyzeFixtures, RegionScopedHotOnlyFlagsInsideRegion)
{
    // Three identical allocations; only the one between `wave-hot:
    // begin` and `wave-hot: end` may be reported.
    const RunResult r = AnalyzeFixture("hot_region.cc");
    EXPECT_EQ(r.exit_code, 1) << r.output;
    EXPECT_EQ(Count(r.output, "W101"), 1u) << r.output;
}

TEST(AnalyzeFixtures, JustifiedAllowSilencesHotRule)
{
    const RunResult r = AnalyzeFixture("hot_allow.cc");
    EXPECT_EQ(r.exit_code, 0) << r.output;
    EXPECT_NE(r.output.find("1 suppressed"), std::string::npos)
        << r.output;
}

TEST(AnalyzeFixtures, InlineSuppressionSilencesFinding)
{
    const RunResult r = AnalyzeFixture("suppressed.cc");
    EXPECT_EQ(r.exit_code, 0) << r.output;
    EXPECT_NE(r.output.find("1 suppressed"), std::string::npos)
        << r.output;
}

TEST(AnalyzeFixtures, AllowOnLineAboveSuppresses)
{
    const RunResult r = AnalyzeFixture("allow_line_above.cc");
    EXPECT_EQ(r.exit_code, 0) << r.output;
    EXPECT_NE(r.output.find("1 suppressed"), std::string::npos)
        << r.output;
}

TEST(AnalyzeFixtures, OneAllowCommentMaySuppressMultipleRules)
{
    // One allow(W101 W105 ...) comment covers both findings on the
    // line below it.
    const RunResult r = AnalyzeFixture("allow_multi_rule.cc");
    EXPECT_EQ(r.exit_code, 0) << r.output;
    EXPECT_NE(r.output.find("2 suppressed"), std::string::npos)
        << r.output;
}

TEST(AnalyzeFixtures, AllowInsideStringLiteralDoesNotSuppress)
{
    // The incantation quoted in a string literal is data, not a
    // suppression comment.
    const RunResult r = AnalyzeFixture("allow_in_string.cc");
    EXPECT_EQ(r.exit_code, 1) << r.output;
    EXPECT_NE(r.output.find("W007"), std::string::npos) << r.output;
    EXPECT_EQ(r.output.find("suppressed)"), std::string::npos)
        << "nothing should have been inline-suppressed:\n"
        << r.output;
}

TEST(AnalyzeFixtures, StaleBaselineEntryFailsTheRun)
{
    // clean.cc has no findings, so the fixture baseline's entry for it
    // matches nothing and must fail the run with a stale message.
    const RunResult r =
        Exec(kBin + " --root " + kRoot + " --as-src " + kFixtures +
            "/clean.cc --baseline " + kFixtures + "/stale_baseline.txt");
    EXPECT_EQ(r.exit_code, 1) << r.output;
    EXPECT_NE(r.output.find("stale baseline"), std::string::npos)
        << r.output;
}

TEST(AnalyzeFixtures, JsonFormatEmitsFindingsAndOwnership)
{
    const RunResult r =
        Exec(kBin + " --root " + kRoot + " --as-src --format=json " +
            kFixtures + "/w201_dangling_ref.cc");
    EXPECT_EQ(r.exit_code, 1) << r.output;
    EXPECT_NE(r.output.find("\"schema\": \"wave-analyze-v2\""),
              std::string::npos)
        << r.output;
    EXPECT_NE(r.output.find("\"rule\": \"W201\""), std::string::npos)
        << r.output;
    EXPECT_NE(r.output.find("\"suppressed\": false"), std::string::npos)
        << r.output;
    EXPECT_NE(r.output.find("\"ownership\""), std::string::npos)
        << r.output;
}

TEST(AnalyzeFixtures, JsonV2EmitsCallGraphAndOwnershipClosure)
{
    const RunResult r =
        Exec(kBin + " --root " + kRoot + " --as-src --format=json " +
            kFixtures + "/w301_transitive_alloc.cc");
    EXPECT_NE(r.output.find("\"call_graph\""), std::string::npos)
        << r.output;
    EXPECT_NE(r.output.find("\"ownership_closure\""), std::string::npos)
        << r.output;
    // The planted chain's symbols and its alloc fact must be in the
    // artifact, not just the finding.
    EXPECT_NE(r.output.find("\"wave::fixture::GrowPool\""),
              std::string::npos)
        << r.output;
    EXPECT_NE(r.output.find("\"fact\": \"alloc\""), std::string::npos)
        << r.output;
}

TEST(AnalyzeFixtures, SarifFormatEmitsReportedFindings)
{
    const RunResult r =
        Exec(kBin + " --root " + kRoot + " --as-src --format=sarif " +
            kFixtures + "/w201_dangling_ref.cc");
    EXPECT_EQ(r.exit_code, 1) << r.output;
    EXPECT_NE(r.output.find("\"version\": \"2.1.0\""),
              std::string::npos)
        << r.output;
    EXPECT_NE(r.output.find("\"ruleId\": \"W201\""), std::string::npos)
        << r.output;
    EXPECT_NE(r.output.find("\"startLine\""), std::string::npos)
        << r.output;
}

TEST(AnalyzeFixtures, SarifSuppressedFindingsAreOmitted)
{
    const RunResult r =
        Exec(kBin + " --root " + kRoot + " --as-src --format=sarif " +
            kFixtures + "/suppressed.cc");
    EXPECT_EQ(r.exit_code, 0) << r.output;
    EXPECT_EQ(r.output.find("\"ruleId\": \"W"), std::string::npos)
        << r.output;
}

TEST(AnalyzeFixtures, JsonFormatMarksSuppressedFindings)
{
    const RunResult r =
        Exec(kBin + " --root " + kRoot + " --as-src --format=json " +
            kFixtures + "/suppressed.cc");
    EXPECT_EQ(r.exit_code, 0) << r.output;
    EXPECT_NE(r.output.find("\"suppression\": \"inline\""),
              std::string::npos)
        << r.output;
}

TEST(AnalyzeFixtures, CleanFixtureHasNoFindings)
{
    const RunResult r = AnalyzeFixture("clean.cc");
    EXPECT_EQ(r.exit_code, 0) << r.output;
    EXPECT_NE(r.output.find("wave_analyze: OK"), std::string::npos)
        << r.output;
}

TEST(AnalyzeTree, CleanTreeHasZeroViolations)
{
    const RunResult r =
        Exec(kBin + " --root " + kRoot + " --baseline " + kRoot +
            "/tools/wave_analyze_baseline.txt");
    EXPECT_EQ(r.exit_code, 0) << r.output;
    EXPECT_NE(r.output.find("wave_analyze: OK"), std::string::npos)
        << r.output;
}

TEST(AnalyzeTree, ListRulesCoversFullCatalog)
{
    const RunResult r = Exec(kBin + " --list-rules");
    EXPECT_EQ(r.exit_code, 0) << r.output;
    for (const char* rule : {"W001", "W002", "W003", "W004", "W005",
                             "W006", "W007", "W008", "W101", "W102",
                             "W103", "W104", "W105", "W106", "W201",
                             "W202", "W203", "W204", "W205", "W206",
                             "W301", "W302", "W303", "W304", "W305"}) {
        EXPECT_NE(r.output.find(rule), std::string::npos)
            << "missing " << rule << ":\n"
            << r.output;
    }
}

}  // namespace
