/**
 * @file
 * Unit + integration tests for the workload layer: KV service request
 * lifecycle, load-generator statistics, server pool queueing, and the
 * end-to-end scheduling experiment harness on both deployments.
 */
#include <gtest/gtest.h>

#include "workload/kv_service.h"
#include "workload/loadgen.h"
#include "workload/sched_experiment.h"
#include "workload/server_pool.h"

namespace wave::workload {
namespace {

using sim::Simulator;
using sim::Task;
using namespace sim::time_literals;

TEST(ServerPool, ProcessesJobsWithCost)
{
    Simulator sim;
    machine::ClockDomain domain(1.0);
    machine::Cpu cpu(sim, "c0", &domain);
    ServerPool pool(sim, {&cpu});
    pool.Start();

    int done = 0;
    sim::TimeNs done_at{};
    pool.Submit({1000, [&] {
                     ++done;
                     done_at = sim.Now();
                 }});
    sim.RunFor(10_us);
    EXPECT_EQ(done, 1);
    EXPECT_GE(done_at.ns(), 1000u);
}

TEST(ServerPool, QueuesWhenAllServersBusy)
{
    Simulator sim;
    machine::ClockDomain domain(1.0);
    machine::Cpu cpu(sim, "c0", &domain);
    ServerPool pool(sim, {&cpu});
    pool.Start();

    std::vector<sim::TimeNs> completions;
    for (int i = 0; i < 3; ++i) {
        pool.Submit({1000, [&] { completions.push_back(sim.Now()); }});
    }
    sim.RunFor(10_us);
    ASSERT_EQ(completions.size(), 3u);
    // Serialized on the single CPU: 1 us apart.
    EXPECT_EQ(completions[1] - completions[0], 1000u);
    EXPECT_EQ(completions[2] - completions[1], 1000u);
}

TEST(ServerPool, ParallelServersOverlap)
{
    Simulator sim;
    machine::ClockDomain domain(1.0);
    machine::Cpu c0(sim, "c0", &domain);
    machine::Cpu c1(sim, "c1", &domain);
    ServerPool pool(sim, {&c0, &c1});
    pool.Start();

    int done = 0;
    pool.Submit({1000, [&] { ++done; }});
    pool.Submit({1000, [&] { ++done; }});
    sim.RunFor(1500);
    EXPECT_EQ(done, 2) << "two servers should finish both in one round";
}

TEST(LoadGen, GeneratesApproximatelyTheOfferedRate)
{
    // Count submissions through a stub service-free path: use the
    // experiment harness at light load instead, where achieved == offered.
    SchedExperimentConfig cfg;
    cfg.deployment = Deployment::kOnHost;
    cfg.worker_cores = 4;
    cfg.num_workers = 16;
    cfg.offered_rps = 50'000;
    cfg.warmup_ns = 10_ms;
    cfg.measure_ns = 100_ms;
    auto r = RunSchedExperiment(cfg);
    EXPECT_NEAR(r.achieved_rps, 50'000, 2'500);
}

TEST(LoadGen, MixesGetAndRangeRequests)
{
    SchedExperimentConfig cfg;
    cfg.deployment = Deployment::kOnHost;
    cfg.policy = PolicyKind::kShinjuku;
    cfg.worker_cores = 8;
    cfg.num_workers = 32;
    cfg.offered_rps = 30'000;
    cfg.get_fraction = 0.9;
    cfg.range_service_ns = 100_us;  // mild ranges for a fast test
    cfg.warmup_ns = 10_ms;
    cfg.measure_ns = 100_ms;
    auto r = RunSchedExperiment(cfg);
    // RANGE p99 must reflect the longer service time.
    EXPECT_GT(r.range_p99, 100'000u);
    EXPECT_GT(r.completed, 2000u);
}

class DeploymentTest : public ::testing::TestWithParam<Deployment> {};

TEST_P(DeploymentTest, LightLoadHasLowLatency)
{
    SchedExperimentConfig cfg;
    cfg.deployment = GetParam();
    cfg.worker_cores = 8;
    cfg.num_workers = 32;
    cfg.offered_rps = 100'000;
    cfg.warmup_ns = 10_ms;
    cfg.measure_ns = 100_ms;
    auto r = RunSchedExperiment(cfg);
    EXPECT_NEAR(r.achieved_rps, 100'000, 5'000);
    // 10 us service + scheduling overhead: median well under 30 us.
    EXPECT_LT(r.get_p50, 30'000u);
    EXPECT_LT(r.get_p99, 100'000u);
}

TEST_P(DeploymentTest, OverloadDegradesGracefully)
{
    SchedExperimentConfig cfg;
    cfg.deployment = GetParam();
    cfg.worker_cores = 4;
    cfg.num_workers = 16;
    cfg.offered_rps = 800'000;  // 2x what 4 cores can do
    cfg.warmup_ns = 10_ms;
    cfg.measure_ns = 50_ms;
    auto r = RunSchedExperiment(cfg);
    // Achieved flattens near capacity instead of collapsing.
    EXPECT_GT(r.achieved_rps, 200'000);
    EXPECT_LT(r.achieved_rps, 500'000);
    // Open-loop overload: latency explodes.
    EXPECT_GT(r.get_p99, 1'000'000u);
}

TEST_P(DeploymentTest, NoCommitShouldFailUnderSteadyLoad)
{
    SchedExperimentConfig cfg;
    cfg.deployment = GetParam();
    cfg.worker_cores = 8;
    cfg.num_workers = 32;
    cfg.offered_rps = 200'000;
    cfg.warmup_ns = 10_ms;
    cfg.measure_ns = 50_ms;
    auto r = RunSchedExperiment(cfg);
    // Transactions may fail only in rare races; the vast majority of
    // decisions must commit.
    EXPECT_LT(r.commits_failed * 100, r.agent_decisions + 1);
}

INSTANTIATE_TEST_SUITE_P(
    Deployments, DeploymentTest,
    ::testing::Values(Deployment::kOnHost, Deployment::kWave),
    [](const ::testing::TestParamInfo<Deployment>& param_info) {
        return param_info.param == Deployment::kWave ? "Wave" : "OnHost";
    });

TEST(SchedExperiment, PrestagingImprovesThroughputNearSaturation)
{
    SchedExperimentConfig base;
    base.deployment = Deployment::kWave;
    base.worker_cores = 8;
    base.num_workers = 48;
    base.offered_rps = 640'000;  // near 8-core saturation
    base.warmup_ns = 10_ms;
    base.measure_ns = 60_ms;
    base.prestage_min_depth = 4;

    SchedExperimentConfig without = base;
    without.prestage = false;
    const auto with_r = RunSchedExperiment(base);
    const auto without_r = RunSchedExperiment(without);
    EXPECT_GT(with_r.achieved_rps, without_r.achieved_rps)
        << "prestaging should raise the achievable rate (§5.4)";
}

TEST(SchedExperiment, WaveOptimizationLadderIsMonotonic)
{
    // Each §5.3/§5.4 optimization level must not hurt throughput.
    SchedExperimentConfig base;
    base.deployment = Deployment::kWave;
    base.worker_cores = 8;
    base.num_workers = 48;
    base.offered_rps = 500'000;
    base.warmup_ns = 10_ms;
    base.measure_ns = 60_ms;

    SchedExperimentConfig level0 = base;
    level0.opt = api::OptimizationConfig::None();
    level0.prestage = false;

    SchedExperimentConfig level1 = level0;
    level1.opt.nic_wb_ptes = true;

    SchedExperimentConfig level2 = level1;
    level2.opt.host_wc_wt_ptes = true;

    SchedExperimentConfig level3 = level2;
    level3.opt.prestage_prefetch = true;
    level3.prestage = true;

    const double t0 = RunSchedExperiment(level0).achieved_rps;
    const double t1 = RunSchedExperiment(level1).achieved_rps;
    const double t2 = RunSchedExperiment(level2).achieved_rps;
    const double t3 = RunSchedExperiment(level3).achieved_rps;
    EXPECT_GE(t1, t0 * 0.98);
    EXPECT_GE(t2, t1 * 0.98);
    EXPECT_GE(t3, t2 * 0.98);
    EXPECT_GT(t3, t0) << "full optimizations must beat the baseline";
}

}  // namespace
}  // namespace wave::workload
