/**
 * @file
 * The virtual-time happens-before race detector (check/hb.h).
 *
 * Unit-level properties of the vector-clock engine first: program order
 * and release/acquire chains suppress reports, unsynchronized conflicts
 * are reported with tie-break vs virtual-time classification, and
 * AllowUnordered() annotations are honoured. Then seeded races through
 * the real MMIO queue endpoints: two producers driving one ring (an
 * aliasing bug no protocol edge orders) are caught with both access
 * sites attributed, while the correct single-producer flow — including
 * ring wraparound, where slot reuse is ordered only by the lazy
 * consumed-counter handshake — stays race-free.
 */
#include <gtest/gtest.h>

#include <vector>

#include "channel/mmio_queue.h"
#include "check/hb.h"
#include "check/protocol.h"
#include "sim/simulator.h"
#include "sim/task.h"
#include "wave/runtime.h"

namespace wave {
namespace {

using namespace sim::time_literals;
using check::HbRaceDetector;
using check::RaceKind;

/** Runs a coroutine to completion on @p sim. */
template <typename MakeTask>
void
RunToCompletion(sim::Simulator& sim, MakeTask make_task)
{
    sim.Spawn(make_task());
    sim.Run();
}

// --- Vector-clock engine ---------------------------------------------

TEST(HbRaceDetector, ProgramOrderIsNotARace)
{
    sim::Simulator sim;
    HbRaceDetector hb(sim);
    const sim::ActorId actor = hb.RegisterActor("solo");
    int region = 0;

    hb.OnAccess(actor, &region, 0, 8, /*is_write=*/true, "first");
    hb.OnAccess(actor, &region, 0, 8, /*is_write=*/true, "second");
    hb.OnAccess(actor, &region, 0, 8, /*is_write=*/false, "third");

    EXPECT_TRUE(hb.Races().empty());
    EXPECT_EQ(hb.Stats().writes, 2u);
    EXPECT_EQ(hb.Stats().reads, 1u);
}

TEST(HbRaceDetector, UnsynchronizedWritesAtSameTimeAreTieBreakRaces)
{
    sim::Simulator sim;
    HbRaceDetector hb(sim);
    const sim::ActorId a = hb.RegisterActor("a");
    const sim::ActorId b = hb.RegisterActor("b");
    int region = 0;

    // Same timestamp, no happens-before edge: whichever ran first did
    // so purely by event-queue tie-break.
    hb.OnAccess(a, &region, 0, 8, true, "a-write");
    hb.OnAccess(b, &region, 0, 8, true, "b-write");

    ASSERT_EQ(hb.Races().size(), 1u);
    const auto& race = hb.Races().front();
    EXPECT_EQ(race.kind, RaceKind::kTieBreak);
    EXPECT_STREQ(race.first.label, "a-write");
    EXPECT_STREQ(race.second.label, "b-write");
}

TEST(HbRaceDetector, UnsynchronizedWritesAcrossTimeAreVirtualTimeRaces)
{
    sim::Simulator sim;
    HbRaceDetector hb(sim);
    const sim::ActorId a = hb.RegisterActor("a");
    const sim::ActorId b = hb.RegisterActor("b");
    int region = 0;

    RunToCompletion(sim, [&]() -> sim::Task<> {
        hb.OnAccess(a, &region, 0, 8, true, "a-write");
        co_await sim.Delay(100);
        // 100 ns later and still no protocol edge: the order is this
        // run's timing luck, not a guarantee.
        hb.OnAccess(b, &region, 0, 8, true, "b-write");
    });

    ASSERT_EQ(hb.Races().size(), 1u);
    EXPECT_EQ(hb.Races().front().kind, RaceKind::kVirtualTime);
}

TEST(HbRaceDetector, ReleaseAcquireChainOrdersConflictingAccesses)
{
    sim::Simulator sim;
    HbRaceDetector hb(sim);
    const sim::ActorId producer = hb.RegisterActor("producer");
    const sim::ActorId consumer = hb.RegisterActor("consumer");
    int region = 0;
    int flag = 0;

    RunToCompletion(sim, [&]() -> sim::Task<> {
        hb.OnAccess(producer, &region, 0, 8, true, "publish");
        hb.OnRelease(producer, &flag, 0);
        co_await sim.Delay(100);
        hb.OnAcquire(consumer, &flag, 0);
        hb.OnAccess(consumer, &region, 0, 8, false, "consume");
        // Even a consumer *write* (e.g. in-place ack) is ordered.
        hb.OnAccess(consumer, &region, 0, 8, true, "ack");
    });

    EXPECT_TRUE(hb.Races().empty());
    EXPECT_EQ(hb.Stats().releases, 1u);
    EXPECT_EQ(hb.Stats().acquires, 1u);
}

TEST(HbRaceDetector, AcquireWithoutMatchingReleaseDoesNotOrder)
{
    sim::Simulator sim;
    HbRaceDetector hb(sim);
    const sim::ActorId a = hb.RegisterActor("a");
    const sim::ActorId b = hb.RegisterActor("b");
    int region = 0;
    int flag = 0;

    RunToCompletion(sim, [&]() -> sim::Task<> {
        hb.OnAccess(a, &region, 0, 8, true, "a-write");
        hb.OnRelease(a, &flag, /*tag=*/0);
        co_await sim.Delay(100);
        // The consumer acquires a *different* sync var (wrong slot tag):
        // no edge, so the conflict stays racy.
        hb.OnAcquire(b, &flag, /*tag=*/1);
        hb.OnAccess(b, &region, 0, 8, true, "b-write");
    });

    ASSERT_EQ(hb.Races().size(), 1u);
}

TEST(HbRaceDetector, ConcurrentReadsDoNotRaceButReadWriteDoes)
{
    sim::Simulator sim;
    HbRaceDetector hb(sim);
    const sim::ActorId a = hb.RegisterActor("a");
    const sim::ActorId b = hb.RegisterActor("b");
    const sim::ActorId c = hb.RegisterActor("c");
    int region = 0;

    hb.OnAccess(a, &region, 0, 8, false, "a-read");
    hb.OnAccess(b, &region, 0, 8, false, "b-read");
    EXPECT_TRUE(hb.Races().empty());

    hb.OnAccess(c, &region, 0, 8, true, "c-write");
    EXPECT_FALSE(hb.Races().empty());
}

TEST(HbRaceDetector, DistinctLinesNeverConflict)
{
    sim::Simulator sim;
    HbRaceDetector hb(sim);
    const sim::ActorId a = hb.RegisterActor("a");
    const sim::ActorId b = hb.RegisterActor("b");
    int region = 0;

    hb.OnAccess(a, &region, 0, 8, true, "line-0");
    hb.OnAccess(b, &region, HbRaceDetector::kLineSize, 8, true, "line-1");

    EXPECT_TRUE(hb.Races().empty());
}

TEST(HbRaceDetector, AllowUnorderedSuppressesTheReport)
{
    sim::Simulator sim;
    HbRaceDetector hb(sim);
    const sim::ActorId a = hb.RegisterActor("a");
    const sim::ActorId b = hb.RegisterActor("b");
    int region = 0;

    // A diagnostic snapshot line: readers tolerate any interleaving.
    hb.AllowUnordered(&region, 0, 8);
    hb.OnAccess(a, &region, 0, 8, true, "a-write");
    hb.OnAccess(b, &region, 0, 8, true, "b-write");

    EXPECT_TRUE(hb.Races().empty());
    EXPECT_GT(hb.Stats().allowed_unordered, 0u);
}

TEST(HbRaceDetector, FailFastPanicsOnFirstRace)
{
    sim::Simulator sim;
    HbRaceDetector hb(sim);
    hb.SetFailFast(true);
    const sim::ActorId a = hb.RegisterActor("a");
    const sim::ActorId b = hb.RegisterActor("b");
    int region = 0;

    hb.OnAccess(a, &region, 0, 8, true, "a-write");
    EXPECT_DEATH(hb.OnAccess(b, &region, 0, 8, true, "b-write"),
                 "virtual-time race");
}

// --- Seeded races through the real queue endpoints -------------------

struct QueueWorld {
    sim::Simulator sim;
    machine::Machine machine{sim};
    WaveRuntime runtime{sim, machine, pcie::PcieConfig{},
                        api::OptimizationConfig::Full()};
    HostToNicChannel chan;

    explicit QueueWorld(std::size_t capacity = 64)
    {
        channel::QueueConfig qc;
        qc.capacity = capacity;
        qc.payload_size = 32;
        qc.sync_interval = 2;
        chan = runtime.CreateHostToNicQueue(qc);
    }

    channel::Bytes
    Msg() const
    {
        return channel::Bytes(32);
    }
};

TEST(HbRaceDetector, TwoProducersSharingOneRingIsAVirtualTimeRace)
{
    QueueWorld w;
    // SEEDED BUG: a second producer endpoint aliases the same ring
    // storage (say, a restarted sender whose predecessor still holds
    // the queue). Each keeps its own head index, so both write absolute
    // slot 0 — and no flag/counter handshake orders producer against
    // producer.
    channel::HostProducer rogue(w.chan.host->Queue(),
                                pcie::PteType::kUncacheable,
                                pcie::PteType::kUncacheable);
    rogue.BindCheckers(w.runtime.Hb(), w.runtime.Protocol(),
                       w.runtime.Hb()->RegisterActor("rogue-producer"));

    RunToCompletion(w.sim, [&]() -> sim::Task<> {
        const std::vector<channel::Bytes> batch{w.Msg()};
        co_await w.chan.host->Send(batch);
        co_await w.sim.Delay(1_us);
        co_await rogue.Send(batch);
    });

    ASSERT_FALSE(w.runtime.Hb()->Races().empty());
    const auto& race = w.runtime.Hb()->Races().front();
    EXPECT_EQ(race.kind, RaceKind::kVirtualTime);
    EXPECT_TRUE(race.first.is_write);
    EXPECT_TRUE(race.second.is_write);
    EXPECT_STREQ(race.second.actor, "rogue-producer");
}

TEST(HbRaceDetector, SingleProducerConsumerFlowIsRaceFreeAcrossLaps)
{
    QueueWorld w(/*capacity=*/4);

    RunToCompletion(w.sim, [&]() -> sim::Task<> {
        // 3 laps of a 4-slot ring: every slot is reused, so the only
        // thing ordering a new write against the old read is the lazy
        // consumed-counter release/acquire chain.
        const std::vector<channel::Bytes> batch{w.Msg()};
        for (int i = 0; i < 12; ++i) {
            while ((co_await w.chan.host->Send(batch)) == 0) {
                co_await w.sim.Delay(100);
            }
            std::optional<channel::Bytes> got;
            while (!got.has_value()) {
                got = co_await w.chan.nic->Poll();
            }
        }
    });

    for (const auto& race : w.runtime.Hb()->Races()) {
        ADD_FAILURE() << race.Describe();
    }
    EXPECT_EQ(w.runtime.Hb()->Stats().writes, 12u);
    EXPECT_GT(w.runtime.Hb()->Stats().acquires, 0u);
    EXPECT_TRUE(w.runtime.Protocol()->Violations().empty());
}

}  // namespace
}  // namespace wave
