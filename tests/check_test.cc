/**
 * @file
 * The wave::check correctness-tooling layer itself.
 *
 * Two kinds of properties are pinned down here:
 *
 *   1. The coherence checker finds seeded protocol bugs — a host that
 *      re-reads a write-through-cached line the NIC has since written,
 *      without the clflush the §5.3.2 software-coherence protocol
 *      requires — and reports exactly the offending access pair. Clean
 *      runs of the same flows (with the clflush) report nothing, and
 *      the full Wave runtime stack stays violation-free end to end.
 *
 *   2. The determinism auditor: the simulator's event-stream FNV
 *      fingerprint is reproducible, keyed same-timestamp events
 *      execute in key order regardless of insertion order, and the
 *      tie audit counts unkeyed same-timestamp insertions.
 */
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "check/coherence.h"
#include "pcie/config.h"
#include "pcie/dma.h"
#include "pcie/mmio.h"
#include "sim/simulator.h"
#include "sim/task.h"

namespace wave {
namespace {

using check::CoherenceChecker;
using check::Domain;
using check::ViolationKind;

struct Fabric {
    sim::Simulator sim;
    pcie::PcieConfig config;
    pcie::NicDram dram{sim, config, 4096};
    CoherenceChecker checker{sim};

    Fabric() { dram.AttachChecker(&checker); }
};

/** Runs a coroutine to completion on the fixture simulator. */
template <typename MakeTask>
void
RunToCompletion(sim::Simulator& sim, MakeTask make_task)
{
    sim.Spawn(make_task());
    sim.Run();
}

// --- Seeded coherence bugs -------------------------------------------

TEST(CoherenceChecker, MissingClflushAcrossDomainsIsReportedOnce)
{
    Fabric f;
    pcie::HostMmioMapping host(f.dram, pcie::PteType::kWriteThrough);
    pcie::NicLocalMapping nic(f.dram, pcie::PteType::kWriteBack);

    RunToCompletion(f.sim, [&]() -> sim::Task<> {
        std::uint64_t value = 0;

        // Host caches line 0.
        co_await host.Read(0, &value, sizeof(value));

        // NIC dirties the same line in its clock domain.
        const std::uint64_t fresh = 0xfeedULL;
        co_await nic.Write(0, &fresh, sizeof(fresh));

        // SEEDED BUG: the host re-reads the line with no clflush in
        // between — a cross-domain read of a line dirty in the other
        // domain. The data served is the stale cached copy.
        co_await host.Read(0, &value, sizeof(value));
        EXPECT_NE(value, fresh);  // the model really served stale bytes
    });

    ASSERT_EQ(f.checker.Violations().size(), 1u)
        << "expected exactly the seeded access pair";
    const check::Violation& violation = f.checker.Violations().front();
    EXPECT_EQ(violation.kind, ViolationKind::kStaleCachedRead);
    EXPECT_EQ(violation.line, 0u);
    // Both access sites are identified: the racing host read...
    EXPECT_EQ(violation.read.domain, Domain::kHost);
    EXPECT_STREQ(violation.read.label, "HostMmioMapping::ReadCachedWt");
    // ...and the conflicting NIC write.
    EXPECT_EQ(violation.write.domain, Domain::kNic);
    EXPECT_STREQ(violation.write.label, "NicLocalMapping::Write");
    EXPECT_EQ(violation.write.offset, 0u);
    EXPECT_FALSE(violation.Describe().empty());
}

TEST(CoherenceChecker, ClflushBeforeReadReportsNothing)
{
    Fabric f;
    pcie::HostMmioMapping host(f.dram, pcie::PteType::kWriteThrough);
    pcie::NicLocalMapping nic(f.dram, pcie::PteType::kWriteBack);

    RunToCompletion(f.sim, [&]() -> sim::Task<> {
        std::uint64_t value = 0;
        co_await host.Read(0, &value, sizeof(value));

        const std::uint64_t fresh = 0xfeedULL;
        co_await nic.Write(0, &fresh, sizeof(fresh));

        // Correct protocol: flush the line, then read fresh data.
        co_await host.Clflush(0, sizeof(value));
        co_await host.Read(0, &value, sizeof(value));
        EXPECT_EQ(value, fresh);
    });

    EXPECT_TRUE(f.checker.Violations().empty());
    EXPECT_GT(f.checker.Stats().cache_drops, 0u);
}

TEST(CoherenceChecker, RepeatedStaleReadsDeduplicateToOneReport)
{
    Fabric f;
    pcie::HostMmioMapping host(f.dram, pcie::PteType::kWriteThrough);
    pcie::NicLocalMapping nic(f.dram, pcie::PteType::kWriteBack);

    RunToCompletion(f.sim, [&]() -> sim::Task<> {
        std::uint64_t value = 0;
        co_await host.Read(0, &value, sizeof(value));
        const std::uint64_t fresh = 1;
        co_await nic.Write(0, &fresh, sizeof(fresh));
        // A polling loop hammering the same stale line must not flood
        // the report list with copies of one race.
        for (int i = 0; i < 100; ++i) {
            co_await host.Read(0, &value, sizeof(value));
        }
    });

    EXPECT_EQ(f.checker.Violations().size(), 1u);
}

TEST(CoherenceChecker, UnflushedWriteCombiningReadIsReported)
{
    Fabric f;
    pcie::HostMmioMapping host(f.dram, pcie::PteType::kWriteCombining);
    pcie::NicLocalMapping nic(f.dram, pcie::PteType::kWriteBack);

    RunToCompletion(f.sim, [&]() -> sim::Task<> {
        // Host parks a store in the write-combining buffer and never
        // fences; the NIC then consumes the line. On hardware this is
        // the classic lost-doorbell-payload bug.
        const std::uint64_t payload = 0xabcdULL;
        co_await host.Write(0, &payload, sizeof(payload));

        std::uint64_t seen = 0;
        co_await nic.Read(0, &seen, sizeof(seen));
        EXPECT_NE(seen, payload);  // the bytes really were not there
    });

    ASSERT_EQ(f.checker.Violations().size(), 1u);
    const check::Violation& violation = f.checker.Violations().front();
    EXPECT_EQ(violation.kind, ViolationKind::kUnflushedWcRead);
    EXPECT_EQ(violation.read.domain, Domain::kNic);
    EXPECT_STREQ(violation.write.label, "HostMmioMapping::Write[WC]");
}

TEST(CoherenceChecker, SfenceBeforeNicReadReportsNothing)
{
    Fabric f;
    pcie::HostMmioMapping host(f.dram, pcie::PteType::kWriteCombining);
    pcie::NicLocalMapping nic(f.dram, pcie::PteType::kWriteBack);

    RunToCompletion(f.sim, [&]() -> sim::Task<> {
        const std::uint64_t payload = 0xabcdULL;
        co_await host.Write(0, &payload, sizeof(payload));
        co_await host.Sfence();
        // Wait out posted-write visibility, then read on the NIC side.
        co_await f.sim.Delay(f.config.posted_visibility_ns + 1);
        std::uint64_t seen = 0;
        co_await nic.Read(0, &seen, sizeof(seen));
        EXPECT_EQ(seen, payload);
    });

    EXPECT_TRUE(f.checker.Violations().empty());
    EXPECT_GT(f.checker.Stats().wc_drains, 0u);
}

TEST(CoherenceChecker, DmaLandingMarksHostCachedLinesStale)
{
    Fabric f;
    pcie::DmaEngine dma(f.sim, f.config);
    dma.AttachChecker(&f.checker);
    pcie::HostMmioMapping host(f.dram, pcie::PteType::kWriteThrough);
    pcie::MemoryRegion host_buffer(4096);

    RunToCompletion(f.sim, [&]() -> sim::Task<> {
        std::uint64_t value = 0;
        co_await host.Read(0, &value, sizeof(value));

        // DMA lands a batch over the cached line (e.g. a page-table
        // batch from the host's own DRAM).
        co_await dma.Transfer(pcie::DmaInitiator::kNic, host_buffer, 0,
                              f.dram.Backing(), 0, 64);

        // SEEDED BUG: no clflush before trusting the cached copy.
        co_await host.Read(0, &value, sizeof(value));
    });

    ASSERT_EQ(f.checker.Violations().size(), 1u);
    EXPECT_EQ(f.checker.Violations().front().kind,
              ViolationKind::kStaleCachedRead);
    EXPECT_EQ(f.checker.Violations().front().write.domain, Domain::kDma);
    EXPECT_GE(f.checker.Stats().dma_writes, 1u);
}

TEST(CoherenceChecker, FailFastPanicsOnFirstViolation)
{
    Fabric f;
    f.checker.SetFailFast(true);
    pcie::HostMmioMapping host(f.dram, pcie::PteType::kWriteThrough);
    pcie::NicLocalMapping nic(f.dram, pcie::PteType::kWriteBack);

    EXPECT_DEATH(
        {
            RunToCompletion(f.sim, [&]() -> sim::Task<> {
                std::uint64_t value = 0;
                co_await host.Read(0, &value, sizeof(value));
                const std::uint64_t fresh = 1;
                co_await nic.Write(0, &fresh, sizeof(fresh));
                co_await host.Read(0, &value, sizeof(value));
            });
        },
        "coherence violation");
}

TEST(CoherenceChecker, CoherentInterconnectNeedsNoClflush)
{
    sim::Simulator sim;
    pcie::PcieConfig config = pcie::PcieConfig::Upi();
    pcie::NicDram dram(sim, config, 4096);
    CoherenceChecker checker(sim);
    dram.AttachChecker(&checker);
    pcie::HostMmioMapping host(dram, pcie::PteType::kWriteThrough);
    pcie::NicLocalMapping nic(dram, pcie::PteType::kWriteBack);

    RunToCompletion(sim, [&]() -> sim::Task<> {
        std::uint64_t value = 0;
        co_await host.Read(0, &value, sizeof(value));
        const std::uint64_t fresh = 0xfeedULL;
        co_await nic.Write(0, &fresh, sizeof(fresh));
        // Hardware invalidated the cached line; the re-read misses and
        // fetches fresh data — no software flush, no violation.
        co_await host.Read(0, &value, sizeof(value));
        EXPECT_EQ(value, fresh);
    });

    EXPECT_TRUE(checker.Violations().empty());
}

// --- Determinism auditor ---------------------------------------------

TEST(DeterminismAuditor, EventHashIsRunToRunReproducible)
{
    auto run = [] {
        sim::Simulator sim;
        int counter = 0;
        for (int i = 0; i < 64; ++i) {
            sim.Schedule(i * 10, [&counter] { ++counter; });
        }
        sim.Run();
        return sim.EventHash();
    };
    EXPECT_EQ(run(), run());
}

TEST(DeterminismAuditor, KeyedTiesExecuteInKeyOrderNotInsertionOrder)
{
    auto run = [](const std::vector<std::uint64_t>& insertion_order) {
        sim::Simulator sim;
        std::vector<std::uint64_t> executed;
        for (std::uint64_t key : insertion_order) {
            sim.ScheduleKeyed(100, key,
                              [&executed, key] { executed.push_back(key); });
        }
        sim.Run();
        return executed;
    };
    const std::vector<std::uint64_t> a = run({0, 1, 2, 3, 4});
    const std::vector<std::uint64_t> b = run({3, 1, 4, 0, 2});
    EXPECT_EQ(a, b);
    EXPECT_EQ(a, (std::vector<std::uint64_t>{0, 1, 2, 3, 4}));
}

TEST(DeterminismAuditor, TieAuditCountsUnkeyedSameTimestampInsertions)
{
    sim::Simulator sim;
    sim.EnableTieAudit();
    sim.Schedule(100, [] {});
    sim.Schedule(100, [] {});          // unkeyed collision: counted
    sim.ScheduleKeyed(100, 7, [] {});  // keyed: explicitly ordered, fine
    sim.Schedule(200, [] {});          // different timestamp: fine
    sim.Run();
    EXPECT_EQ(sim.UnkeyedTieInsertions(), 1u);
}

}  // namespace
}  // namespace wave
