/**
 * @file
 * Unit and property tests for the wave::offload datapath: kernel
 * known-answer vectors (FIPS-197 / SP 800-38A AES, FIPS 180-4 SHA-256,
 * the Microsoft RSS Toeplitz suite), ACL and parser behavior, sketch
 * error bounds, stage-chain semantics, and pipeline execution on
 * machine::Cpu NIC cores — including the composition property that any
 * stage order yields identical per-stage packet counts.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <string>
#include <vector>

#include "machine/machine.h"
#include "offload/costs.h"
#include "offload/kernels.h"
#include "offload/packet.h"
#include "offload/packetgen.h"
#include "offload/pipeline.h"
#include "offload/stage.h"
#include "sim/simulator.h"

namespace wave::offload {
namespace {

using sim::Simulator;
using sim::Task;

// ---------------------------------------------------------------------------
// Toeplitz (Microsoft RSS verification suite)
// ---------------------------------------------------------------------------

TEST(Toeplitz, MatchesPublishedRssVectors)
{
    // The two IPv4+TCP vectors from the original RSS verification
    // suite, computed over (src ip, dst ip, src port, dst port) with
    // the default driver key.
    const ToeplitzKey key = DefaultRssKey();

    FiveTuple a;
    a.src_ip = 0x420995bb;  // 66.9.149.187:2794
    a.dst_ip = 0xa18e6450;  // -> 161.142.100.80:1766
    a.src_port = 2794;
    a.dst_port = 1766;
    EXPECT_EQ(ToeplitzHashTuple(key, a), 0x51ccc178u);

    FiveTuple b;
    b.src_ip = 0xc75c6f02;  // 199.92.111.2:14230
    b.dst_ip = 0x41458c53;  // -> 65.69.140.83:4739
    b.src_port = 14230;
    b.dst_port = 4739;
    EXPECT_EQ(ToeplitzHashTuple(key, b), 0xc626b0eau);
}

TEST(Toeplitz, IpOnlyVectorMatches)
{
    // Same suite, 8-byte (addresses only) input: 0x323e8fc2.
    const ToeplitzKey key = DefaultRssKey();
    const std::uint8_t in[8] = {66, 9, 149, 187, 161, 142, 100, 80};
    EXPECT_EQ(ToeplitzHash(key, in, sizeof(in)), 0x323e8fc2u);
}

// ---------------------------------------------------------------------------
// AES-128 known-answer tests
// ---------------------------------------------------------------------------

TEST(Aes128, Fips197AppendixCBlock)
{
    const std::array<std::uint8_t, 16> key = {
        0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07,
        0x08, 0x09, 0x0a, 0x0b, 0x0c, 0x0d, 0x0e, 0x0f};
    const std::uint8_t pt[16] = {0x00, 0x11, 0x22, 0x33, 0x44, 0x55,
                                 0x66, 0x77, 0x88, 0x99, 0xaa, 0xbb,
                                 0xcc, 0xdd, 0xee, 0xff};
    const std::uint8_t expect[16] = {0x69, 0xc4, 0xe0, 0xd8, 0x6a, 0x7b,
                                     0x04, 0x30, 0xd8, 0xcd, 0xb7, 0x80,
                                     0x70, 0xb4, 0xc5, 0x5a};
    Aes128 aes(key);
    std::uint8_t ct[16];
    aes.EncryptBlock(pt, ct);
    EXPECT_EQ(std::memcmp(ct, expect, 16), 0);
}

TEST(Aes128, Sp80038aCtrVector)
{
    // NIST SP 800-38A F.5.1 CTR-AES128.Encrypt, all four blocks.
    const std::array<std::uint8_t, 16> key = {
        0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6,
        0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c};
    const std::array<std::uint8_t, 16> counter = {
        0xf0, 0xf1, 0xf2, 0xf3, 0xf4, 0xf5, 0xf6, 0xf7,
        0xf8, 0xf9, 0xfa, 0xfb, 0xfc, 0xfd, 0xfe, 0xff};
    std::uint8_t data[64] = {
        0x6b, 0xc1, 0xbe, 0xe2, 0x2e, 0x40, 0x9f, 0x96, 0xe9, 0x3d,
        0x7e, 0x11, 0x73, 0x93, 0x17, 0x2a, 0xae, 0x2d, 0x8a, 0x57,
        0x1e, 0x03, 0xac, 0x9c, 0x9e, 0xb7, 0x6f, 0xac, 0x45, 0xaf,
        0x8e, 0x51, 0x30, 0xc8, 0x1c, 0x46, 0xa3, 0x5c, 0xe4, 0x11,
        0xe5, 0xfb, 0xc1, 0x19, 0x1a, 0x0a, 0x52, 0xef, 0xf6, 0x9f,
        0x24, 0x45, 0xdf, 0x4f, 0x9b, 0x17, 0xad, 0x2b, 0x41, 0x7b,
        0xe6, 0x6c, 0x37, 0x10};
    const std::uint8_t expect[64] = {
        0x87, 0x4d, 0x61, 0x91, 0xb6, 0x20, 0xe3, 0x26, 0x1b, 0xef,
        0x68, 0x64, 0x99, 0x0d, 0xb6, 0xce, 0x98, 0x06, 0xf6, 0x6b,
        0x79, 0x70, 0xfd, 0xff, 0x86, 0x17, 0x18, 0x7b, 0xb9, 0xff,
        0xfd, 0xff, 0x5a, 0xe4, 0xdf, 0x3e, 0xdb, 0xd5, 0xd3, 0x5e,
        0x5b, 0x4f, 0x09, 0x02, 0x0d, 0xb0, 0x3e, 0xab, 0x1e, 0x03,
        0x1d, 0xda, 0x2f, 0xbe, 0x03, 0xd1, 0x79, 0x21, 0x70, 0xa0,
        0xf3, 0x00, 0x9c, 0xee};
    Aes128 aes(key);
    aes.CtrCrypt(counter, data, sizeof(data));
    EXPECT_EQ(std::memcmp(data, expect, sizeof(data)), 0);
}

TEST(Aes128, CtrIsItsOwnInverse)
{
    const std::array<std::uint8_t, 16> key = {1, 2, 3, 4};
    const std::array<std::uint8_t, 16> ctr = {9, 9, 9};
    std::uint8_t data[100];
    FillRandomBytes(7, data, sizeof(data));
    std::uint8_t original[100];
    std::memcpy(original, data, sizeof(data));
    Aes128 aes(key);
    aes.CtrCrypt(ctr, data, sizeof(data));
    EXPECT_NE(std::memcmp(data, original, sizeof(data)), 0);
    aes.CtrCrypt(ctr, data, sizeof(data));
    EXPECT_EQ(std::memcmp(data, original, sizeof(data)), 0);
}

// ---------------------------------------------------------------------------
// SHA-256 known-answer tests
// ---------------------------------------------------------------------------

std::string
HexDigest(const std::array<std::uint8_t, 32>& digest)
{
    static const char* hex = "0123456789abcdef";
    std::string out;
    for (const std::uint8_t b : digest) {
        out.push_back(hex[b >> 4]);
        out.push_back(hex[b & 0xf]);
    }
    return out;
}

TEST(Sha256, Fips180Vectors)
{
    const auto* abc = reinterpret_cast<const std::uint8_t*>("abc");
    EXPECT_EQ(HexDigest(Sha256::Digest(abc, 3)),
              "ba7816bf8f01cfea414140de5dae2223"
              "b00361a396177a9cb410ff61f20015ad");

    EXPECT_EQ(HexDigest(Sha256::Digest(nullptr, 0)),
              "e3b0c44298fc1c149afbf4c8996fb924"
              "27ae41e4649b934ca495991b7852b855");

    const char* two_block =
        "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq";
    EXPECT_EQ(HexDigest(Sha256::Digest(
                  reinterpret_cast<const std::uint8_t*>(two_block),
                  std::strlen(two_block))),
              "248d6a61d20638b8e5c026930c3e6039"
              "a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, IncrementalUpdateMatchesOneShot)
{
    std::uint8_t data[300];
    FillRandomBytes(42, data, sizeof(data));
    const auto one_shot = Sha256::Digest(data, sizeof(data));

    Sha256 h;
    h.Update(data, 1);
    h.Update(data + 1, 63);    // completes the first block exactly
    h.Update(data + 64, 100);  // spans blocks
    h.Update(data + 164, 136);
    EXPECT_EQ(HexDigest(h.Finish()), HexDigest(one_shot));
}

// ---------------------------------------------------------------------------
// Firewall ACL
// ---------------------------------------------------------------------------

FiveTuple
MakeTuple(std::uint32_t src_ip, std::uint16_t dst_port,
          std::uint8_t proto = 6)
{
    FiveTuple t;
    t.src_ip = src_ip;
    t.dst_ip = 0xc0a80001;
    t.src_port = 40000;
    t.dst_port = dst_port;
    t.proto = proto;
    return t;
}

TEST(AclTable, DefaultRulesHitAndMiss)
{
    AclTable acl(BuildDefaultAcl(), /*default_allow=*/true);

    // Unremarkable traffic falls through to the default action.
    EXPECT_TRUE(acl.Lookup(MakeTuple(0x0a000001, 80)).allow);
    EXPECT_EQ(acl.Lookup(MakeTuple(0x0a000001, 80)).rule, -1);

    // Blocklisted /16 source.
    EXPECT_FALSE(acl.Lookup(MakeTuple(0xc6120a0b, 80)).allow);

    // Telnet and the debug port range are denied for any source...
    EXPECT_FALSE(acl.Lookup(MakeTuple(0x0a000001, 23)).allow);
    EXPECT_FALSE(acl.Lookup(MakeTuple(0x0a000001, 9050)).allow);
    // ...but the debug-range rule is TCP-only.
    EXPECT_TRUE(acl.Lookup(MakeTuple(0x0a000001, 9050, 17)).allow);

    // The management /24 allow rule outranks the port denies.
    EXPECT_TRUE(acl.Lookup(MakeTuple(0x0a630042, 23)).allow);
    EXPECT_EQ(acl.Lookup(MakeTuple(0x0a630042, 23)).rule, 0);
}

TEST(AclTable, DefaultDenyWhenNoRuleMatches)
{
    AclTable acl({}, /*default_allow=*/false);
    EXPECT_FALSE(acl.Lookup(MakeTuple(0x0a000001, 80)).allow);
    EXPECT_EQ(acl.Lookup(MakeTuple(0x0a000001, 80)).rule, -1);
}

// ---------------------------------------------------------------------------
// HTTP parser
// ---------------------------------------------------------------------------

bool
Parse(const std::string& s, HttpRequest* out)
{
    return ParseHttpRequest(
        reinterpret_cast<const std::uint8_t*>(s.data()), s.size(), out);
}

TEST(HttpParser, ParsesWellFormedRequest)
{
    HttpRequest req;
    ASSERT_TRUE(Parse("GET /kv/123 HTTP/1.1\r\n"
                      "Host: example\r\n"
                      "Content-Length: 42\r\n"
                      "\r\n",
                      &req));
    EXPECT_EQ(req.method, HttpMethod::kGet);
    EXPECT_EQ(req.uri_begin, 4u);
    EXPECT_EQ(req.uri_len, 7u);
    EXPECT_EQ(req.version_minor, 1u);
    EXPECT_EQ(req.num_headers, 2u);
    EXPECT_EQ(req.content_length, 42u);
}

TEST(HttpParser, ParsesRenderedPacketPayload)
{
    std::uint8_t buf[256];
    const std::size_t len = RenderHttpGet(987654, buf, sizeof(buf));
    ASSERT_GT(len, 0u);
    HttpRequest req;
    ASSERT_TRUE(ParseHttpRequest(buf, len, &req));
    EXPECT_EQ(req.method, HttpMethod::kGet);
    EXPECT_EQ(std::string(reinterpret_cast<const char*>(buf) +
                              req.uri_begin,
                          req.uri_len),
              "/kv/987654");
    EXPECT_EQ(req.header_bytes, len);
}

TEST(HttpParser, RejectsMalformedInput)
{
    HttpRequest req;
    // Truncated: headers never terminate.
    EXPECT_FALSE(Parse("GET / HTTP/1.1\r\nHost: x\r\n", &req));
    // Bare LF line endings.
    EXPECT_FALSE(Parse("GET / HTTP/1.1\nHost: x\n\n", &req));
    // Missing URI.
    EXPECT_FALSE(Parse("GET  HTTP/1.1\r\n\r\n", &req));
    // Not an HTTP/1.x version.
    EXPECT_FALSE(Parse("GET / HTTP/2.0\r\n\r\n", &req));
    EXPECT_FALSE(Parse("GET / FTP/1.0\r\n\r\n", &req));
    // Header without a colon.
    EXPECT_FALSE(Parse("GET / HTTP/1.1\r\nbroken header\r\n\r\n", &req));
    // Empty input and lone method.
    EXPECT_FALSE(Parse("", &req));
    EXPECT_FALSE(Parse("GET", &req));
    // Random bytes (the non-HTTP packet-payload case).
    std::uint8_t noise[200];
    FillRandomBytes(3, noise, sizeof(noise));
    EXPECT_FALSE(ParseHttpRequest(noise, sizeof(noise), &req));
}

TEST(HttpParser, UnknownMethodStillParses)
{
    HttpRequest req;
    ASSERT_TRUE(Parse("BREW /pot HTTP/1.0\r\n\r\n", &req));
    EXPECT_EQ(req.method, HttpMethod::kOther);
    EXPECT_EQ(req.version_minor, 0u);
    EXPECT_EQ(req.num_headers, 0u);
}

// ---------------------------------------------------------------------------
// Signature scanner
// ---------------------------------------------------------------------------

TEST(SignatureScanner, CountsOccurrencesIncludingOverlaps)
{
    SignatureScanner scanner({"abc", "bc", "c"});
    const std::string text = "abcabc";
    // Positions: abc x2, bc x2, c x2.
    EXPECT_EQ(scanner.Scan(
                  reinterpret_cast<const std::uint8_t*>(text.data()),
                  text.size()),
              6u);
}

TEST(SignatureScanner, FindsDefaultSignaturesInPayload)
{
    SignatureScanner scanner(BuildDefaultSignatures());
    const std::string attack =
        "GET /../../etc/passwd HTTP/1.1\r\nX: <script>alert(1)</script>\r\n";
    // "../.." once (overlap at offset 5 shares the middle ".."),
    // "/etc/passwd" once, "<script>" once.
    EXPECT_EQ(scanner.Scan(
                  reinterpret_cast<const std::uint8_t*>(attack.data()),
                  attack.size()),
              3u);

    const std::string benign = "GET /kv/42 HTTP/1.1\r\n\r\n";
    EXPECT_EQ(scanner.Scan(
                  reinterpret_cast<const std::uint8_t*>(benign.data()),
                  benign.size()),
              0u);
}

// ---------------------------------------------------------------------------
// Sketches
// ---------------------------------------------------------------------------

TEST(CountMinSketch, NeverUnderestimatesAndBoundsError)
{
    CountMinSketch cms(/*width_log2=*/12, /*depth=*/4);
    // A skewed stream: key k added k times for k in [1, 200].
    for (std::uint64_t k = 1; k <= 200; ++k) {
        cms.Add(k, k);
    }
    const std::uint64_t total = cms.TotalAdded();
    EXPECT_EQ(total, 200ull * 201 / 2);
    for (std::uint64_t k = 1; k <= 200; ++k) {
        const std::uint64_t est = cms.Estimate(k);
        EXPECT_GE(est, k) << "key " << k;  // one-sided error
        // Standard CMS bound: overestimate < 2 * total / width with
        // probability 1 - (1/2)^depth per key; this stream is fixed and
        // comfortably inside it.
        EXPECT_LE(est, k + 2 * total / cms.Width()) << "key " << k;
    }
}

TEST(HyperLogLog, EstimatesWithinTenPercent)
{
    HyperLogLog hll(/*precision_bits=*/10);
    constexpr std::uint64_t kDistinct = 20'000;
    for (std::uint64_t i = 0; i < kDistinct; ++i) {
        hll.Add(Mix64(i));
        hll.Add(Mix64(i));  // duplicates must not inflate the estimate
    }
    const double est = hll.Estimate();
    EXPECT_NEAR(est / static_cast<double>(kDistinct), 1.0, 0.10);
}

TEST(HyperLogLog, SmallRangeIsNearExact)
{
    HyperLogLog hll(10);
    for (std::uint64_t i = 0; i < 50; ++i) hll.Add(Mix64(i));
    EXPECT_NEAR(hll.Estimate(), 50.0, 5.0);
}

// ---------------------------------------------------------------------------
// Stage chain
// ---------------------------------------------------------------------------

Packet
MakePacket(const FiveTuple& t, std::uint32_t payload_len,
           std::uint64_t seed = 1, bool http = false)
{
    Packet p;
    p.id = 1;
    p.tuple = t;
    p.payload_len = payload_len;
    if (http) {
        const std::size_t header =
            RenderHttpGet(7, p.payload.data(), kMaxPayloadBytes);
        if (payload_len < header) {
            p.payload_len = static_cast<std::uint32_t>(header);
        } else if (payload_len > header) {
            FillRandomBytes(seed, p.payload.data() + header,
                            payload_len - header);
        }
    } else {
        FillRandomBytes(seed, p.payload.data(), payload_len);
    }
    return p;
}

TEST(StageChain, FullChainAnnotatesPacket)
{
    StageChain chain(StageChainConfig{});
    Packet p = MakePacket(MakeTuple(0x0a000001, 80), 400, 1, /*http=*/true);
    bool alive = false;
    const sim::DurationNs cost = chain.Process(p, &alive);
    EXPECT_TRUE(alive);
    EXPECT_EQ(p.acl_allowed, 1u);
    EXPECT_EQ(p.http_ok, 1u);
    EXPECT_NE(p.digest, 0u);
    EXPECT_GT(cost.ns(), 0u);
    for (const StageKind kind : kAllStages) {
        EXPECT_EQ(chain.Stats(kind).packets, 1u) << StageName(kind);
    }
    EXPECT_EQ(chain.ConnectionCount(), 1u);
}

TEST(StageChain, FirewallDenyTerminatesEarly)
{
    StageChain chain(StageChainConfig{});
    Packet p = MakePacket(MakeTuple(0xc6120001, 80), 100);
    bool alive = true;
    chain.Process(p, &alive);
    EXPECT_FALSE(alive);
    EXPECT_EQ(p.acl_allowed, 0u);
    EXPECT_EQ(chain.Stats(StageKind::kFirewall).denied, 1u);
    // Nothing downstream of the firewall saw the packet.
    EXPECT_EQ(chain.Stats(StageKind::kLoadBalancer).packets, 0u);
    EXPECT_EQ(chain.Stats(StageKind::kMonitor).packets, 0u);
}

TEST(StageChain, LoadBalancerIsSticky)
{
    StageChainConfig cfg;
    cfg.stages = {StageKind::kLoadBalancer};
    StageChain chain(cfg);

    const FiveTuple flow_a = MakeTuple(0x0a000001, 80);
    Packet p1 = MakePacket(flow_a, 64);
    Packet p2 = MakePacket(flow_a, 64, 2);
    bool alive = false;
    chain.Process(p1, &alive);
    chain.Process(p2, &alive);
    EXPECT_EQ(p1.backend, p2.backend);  // same flow, same backend
    EXPECT_EQ(chain.Stats(StageKind::kLoadBalancer).new_flows, 1u);
    EXPECT_EQ(chain.Stats(StageKind::kLoadBalancer).sticky_hits, 1u);

    // A different flow may land elsewhere, and adds a table entry.
    Packet p3 = MakePacket(MakeTuple(0x0a0000ff, 81), 64);
    chain.Process(p3, &alive);
    EXPECT_EQ(chain.Stats(StageKind::kLoadBalancer).new_flows, 2u);
    EXPECT_EQ(chain.ConnectionCount(), 2u);
}

TEST(StageChain, CostMatchesCalibratedTable)
{
    // cost = sum over stages of base + per_byte * len, independent of
    // payload contents.
    StageChainConfig cfg;
    cfg.stages = {StageKind::kFirewall, StageKind::kAesCtr};
    StageChain chain(cfg);
    Packet p = MakePacket(MakeTuple(0x0a000001, 80), 1000);
    bool alive = false;
    const sim::DurationNs cost = chain.Process(p, &alive);
    const OffloadCosts table;
    const sim::DurationNs expect = StageCostNs(table.firewall, 1000) +
                                   StageCostNs(table.aes_ctr, 1000);
    EXPECT_EQ(cost, expect);
}

TEST(StageChain, AnyStageOrderYieldsIdenticalPacketCounts)
{
    // The composition property: with a deny-free workload every stage
    // sees every packet exactly once regardless of chain order. Byte
    // order still matters for *contents* (AES before the parser
    // scrambles the request), but never for packet/byte counts.
    std::vector<std::vector<StageKind>> orders;
    std::vector<StageKind> base(kAllStages.begin(), kAllStages.end());
    for (std::size_t rot = 0; rot < base.size(); ++rot) {
        std::vector<StageKind> order = base;
        std::rotate(order.begin(),
                    order.begin() + static_cast<std::ptrdiff_t>(rot),
                    order.end());
        orders.push_back(order);
    }
    std::vector<StageKind> reversed(base.rbegin(), base.rend());
    orders.push_back(reversed);

    for (const auto& order : orders) {
        StageChainConfig cfg;
        cfg.stages = order;
        StageChain chain(cfg);
        // 40 packets over 8 flows, mixed HTTP/noise payloads, none of
        // which match a deny rule.
        std::uint64_t expected_bytes = 0;
        for (int i = 0; i < 40; ++i) {
            const auto flow = static_cast<std::uint32_t>(i % 8);
            Packet p = MakePacket(MakeTuple(0x0a000100 + flow, 80),
                                  100 + static_cast<std::uint32_t>(i) * 7,
                                  static_cast<std::uint64_t>(i) + 1,
                                  /*http=*/i % 2 == 0);
            expected_bytes += p.payload_len;
            bool alive = false;
            chain.Process(p, &alive);
            EXPECT_TRUE(alive);
        }
        for (const StageKind kind : kAllStages) {
            EXPECT_EQ(chain.Stats(kind).packets, 40u)
                << StageName(kind) << " with order[0]="
                << StageName(order[0]);
            EXPECT_EQ(chain.Stats(kind).bytes, expected_bytes)
                << StageName(kind);
        }
        EXPECT_EQ(chain.ConnectionCount(), 8u);
    }
}

// ---------------------------------------------------------------------------
// Pipeline on NIC cores
// ---------------------------------------------------------------------------

PacketDesc
MakeDesc(std::uint32_t flow, std::uint32_t len, bool http = false)
{
    PacketDesc d;
    d.tuple = FlowTuple(flow);
    d.payload_len = len;
    d.payload_seed = flow + 1;
    d.http = http;
    d.http_key = flow;
    return d;
}

TEST(OffloadPipeline, RunToCompletionProcessesAllPackets)
{
    Simulator sim;
    machine::MachineConfig mc;
    mc.nic_cores = 4;
    machine::Machine machine(sim, mc);

    PipelineConfig cfg;
    cfg.pool_size = 64;
    OffloadPipeline pipeline(sim, cfg);
    pipeline.AddWorker(machine.NicCpu(1));
    pipeline.AddWorker(machine.NicCpu(2));
    pipeline.Start();
    pipeline.SetMeasureWindow(sim::TimeNs{0}, sim::TimeNs{1'000'000'000});
    EXPECT_EQ(pipeline.NumSegments(), 1u);

    for (std::uint32_t i = 0; i < 50; ++i) {
        EXPECT_TRUE(pipeline.Inject(MakeDesc(i % 5, 200, i % 2 == 0)));
    }
    sim.RunFor(sim::DurationNs{10'000'000});

    EXPECT_EQ(pipeline.Stats().injected, 50u);
    EXPECT_EQ(pipeline.Stats().completed, 50u);
    EXPECT_EQ(pipeline.Stats().denied, 0u);
    EXPECT_EQ(pipeline.Pending(), 0u);
    EXPECT_EQ(pipeline.Latency().Count(), 50u);
    EXPECT_GT(pipeline.Latency().Max(), 0u);
    EXPECT_EQ(pipeline.Chain().Stats(StageKind::kMonitor).packets, 50u);
    // Both workers pulled from the shared ring.
    EXPECT_GT(machine.NicCpu(1).WorkSegments(), 0u);
    EXPECT_GT(machine.NicCpu(2).WorkSegments(), 0u);
}

TEST(OffloadPipeline, PipelinedPlacementSplitsTheChain)
{
    Simulator sim;
    machine::MachineConfig mc;
    mc.nic_cores = 4;
    machine::Machine machine(sim, mc);

    PipelineConfig cfg;
    cfg.placement = Placement::kPipelined;
    cfg.pool_size = 64;
    OffloadPipeline pipeline(sim, cfg);
    pipeline.AddWorker(machine.NicCpu(1));
    pipeline.AddWorker(machine.NicCpu(2));
    pipeline.AddWorker(machine.NicCpu(3));
    pipeline.Start();
    pipeline.SetMeasureWindow(sim::TimeNs{0}, sim::TimeNs{1'000'000'000});
    EXPECT_EQ(pipeline.NumSegments(), 3u);

    for (std::uint32_t i = 0; i < 30; ++i) {
        EXPECT_TRUE(pipeline.Inject(MakeDesc(i % 4, 300)));
    }
    sim.RunFor(sim::DurationNs{10'000'000});

    EXPECT_EQ(pipeline.Stats().completed, 30u);
    EXPECT_EQ(pipeline.Pending(), 0u);
    // Every stage still saw every packet exactly once.
    for (const StageKind kind : kAllStages) {
        EXPECT_EQ(pipeline.Chain().Stats(kind).packets, 30u)
            << StageName(kind);
    }
}

TEST(OffloadPipeline, PoolExhaustionDropsAtIngress)
{
    Simulator sim;
    machine::MachineConfig mc;
    mc.nic_cores = 2;
    machine::Machine machine(sim, mc);

    PipelineConfig cfg;
    cfg.pool_size = 8;
    OffloadPipeline pipeline(sim, cfg);
    pipeline.AddWorker(machine.NicCpu(1));
    pipeline.Start();

    // No simulator time passes between injects: the pool fills.
    int accepted = 0;
    for (std::uint32_t i = 0; i < 12; ++i) {
        if (pipeline.Inject(MakeDesc(i, 100))) ++accepted;
    }
    EXPECT_EQ(accepted, 8);
    EXPECT_EQ(pipeline.Stats().dropped, 4u);

    sim.RunFor(sim::DurationNs{10'000'000});
    EXPECT_EQ(pipeline.Stats().completed, 8u);
    // The pool recycled: new ingress is accepted again.
    EXPECT_TRUE(pipeline.Inject(MakeDesc(0, 100)));
    sim.RunFor(sim::DurationNs{10'000'000});
    EXPECT_EQ(pipeline.Stats().completed, 9u);
}

TEST(OffloadPipeline, DeniedPacketsRetireWithoutCompleting)
{
    Simulator sim;
    machine::MachineConfig mc;
    mc.nic_cores = 2;
    machine::Machine machine(sim, mc);

    PipelineConfig cfg;
    cfg.pool_size = 16;
    OffloadPipeline pipeline(sim, cfg);
    pipeline.AddWorker(machine.NicCpu(1));
    pipeline.Start();
    pipeline.SetMeasureWindow(sim::TimeNs{0}, sim::TimeNs{1'000'000'000});

    PacketDesc blocked = MakeDesc(0, 100);
    blocked.tuple.src_ip = 0xc6120001;  // blocklisted /16
    EXPECT_TRUE(pipeline.Inject(blocked));
    EXPECT_TRUE(pipeline.Inject(MakeDesc(1, 100)));
    sim.RunFor(sim::DurationNs{10'000'000});

    EXPECT_EQ(pipeline.Stats().denied, 1u);
    EXPECT_EQ(pipeline.Stats().completed, 1u);
    EXPECT_EQ(pipeline.Latency().Count(), 1u);  // denies aren't latencies
    EXPECT_EQ(pipeline.Pending(), 0u);
}

TEST(OffloadPipeline, ColocatedSliceProcessesBoundedBatch)
{
    Simulator sim;
    machine::MachineConfig mc;
    mc.nic_cores = 2;
    machine::Machine machine(sim, mc);

    PipelineConfig cfg;
    cfg.pool_size = 32;
    OffloadPipeline pipeline(sim, cfg);
    pipeline.Start();  // no dedicated workers: only the slice drains

    for (std::uint32_t i = 0; i < 10; ++i) {
        ASSERT_TRUE(pipeline.Inject(MakeDesc(i, 100)));
    }

    sim.Spawn([](OffloadPipeline& pl, machine::Cpu& cpu) -> Task<> {
        co_await pl.RunColocatedSlice(cpu, 4);  // budget caps the batch
    }(pipeline, machine.NicCpu(0)));
    sim.Run();
    EXPECT_EQ(pipeline.Stats().completed, 4u);
    EXPECT_EQ(pipeline.Pending(), 6u);

    // Two more slices drain the rest; an empty ring is a cheap no-op.
    sim.Spawn([](OffloadPipeline& pl, machine::Cpu& cpu) -> Task<> {
        co_await pl.RunColocatedSlice(cpu, 4);
        co_await pl.RunColocatedSlice(cpu, 4);
        co_await pl.RunColocatedSlice(cpu, 4);
    }(pipeline, machine.NicCpu(0)));
    sim.Run();
    EXPECT_EQ(pipeline.Stats().completed, 10u);
    EXPECT_EQ(pipeline.Pending(), 0u);
}

TEST(OffloadPipeline, OccupancySnapshotsBracketStageWork)
{
    Simulator sim;
    machine::MachineConfig mc;
    mc.nic_cores = 2;
    machine::Machine machine(sim, mc);

    PipelineConfig cfg;
    cfg.pool_size = 32;
    OffloadPipeline pipeline(sim, cfg);
    pipeline.AddWorker(machine.NicCpu(1));
    pipeline.Start();

    const machine::Cpu::Occupancy before = machine.NicCpu(1).Snapshot();
    for (std::uint32_t i = 0; i < 16; ++i) {
        ASSERT_TRUE(pipeline.Inject(MakeDesc(i, 500)));
    }
    sim.RunFor(sim::DurationNs{1'000'000});
    const machine::Cpu::Occupancy after = machine.NicCpu(1).Snapshot();

    EXPECT_EQ(after.segments - before.segments, 16u);
    const double busy =
        machine::BusyFraction(before, after, sim::DurationNs{1'000'000});
    EXPECT_GT(busy, 0.0);
    EXPECT_LE(busy, 1.0);
    // 16 packets of 500B through all 7 stages on a 0.61x NIC core:
    // roughly (sum of bases + 8.3 ns/B * 500) / 0.61 per packet.
    EXPECT_GT(after.busy_ns - before.busy_ns, sim::DurationNs{50'000});
}

// ---------------------------------------------------------------------------
// Packet generator
// ---------------------------------------------------------------------------

TEST(PacketGenerator, OfferedRateAndDeterminism)
{
    auto run = [](std::uint64_t seed) {
        Simulator sim;
        machine::MachineConfig mc;
        mc.nic_cores = 3;
        machine::Machine machine(sim, mc);
        PipelineConfig cfg;
        cfg.pool_size = 1024;
        OffloadPipeline pipeline(sim, cfg);
        pipeline.AddWorker(machine.NicCpu(1));
        pipeline.AddWorker(machine.NicCpu(2));
        pipeline.Start();
        PacketGenConfig pg;
        pg.rate_pps = 100'000;
        pg.flows = 16;
        pg.end_time = sim::TimeNs{10'000'000};
        pg.seed = seed;
        sim.Spawn(RunPacketGenerator(sim, pipeline, pg));
        sim.RunUntil(sim::TimeNs{20'000'000});
        return std::pair<std::uint64_t, std::uint64_t>(
            pipeline.Stats().injected, sim.EventHash());
    };

    const auto [injected, hash] = run(7);
    // 100k pps over 10 ms -> ~1000 packets (Poisson, generous margin).
    EXPECT_GT(injected, 800u);
    EXPECT_LT(injected, 1200u);

    // Same seed, bit-identical run; different seed, different schedule.
    EXPECT_EQ(run(7), (std::pair<std::uint64_t, std::uint64_t>(injected,
                                                               hash)));
    EXPECT_NE(run(8).second, hash);
}

}  // namespace
}  // namespace wave::offload
