/**
 * @file
 * Golden-value assertions for the calibration constants.
 *
 * Every latency and bandwidth number in the models traces back to the
 * paper's measurements (Table 2 PCIe costs, Table 3 scheduling costs,
 * §7.3.3 UPI preset, §7.4 SOL speed ratio, Figure 5 turbo curves).
 * EXPERIMENTS.md quantities are only comparable to the paper while
 * these stay put, so any drift must be a deliberate, reviewed change —
 * this suite turns silent drift into a tier-1 test failure.
 */
#include <gtest/gtest.h>

#include "ghost/costs.h"
#include "machine/machine.h"
#include "machine/turbo.h"
#include "memmgr/swap_device.h"
#include "offload/costs.h"
#include "pcie/config.h"

namespace wave {
namespace {

TEST(Calibration, PcieTable2Defaults)
{
    const pcie::PcieConfig cfg;
    EXPECT_EQ(cfg.mmio_read_ns, 750);
    EXPECT_EQ(cfg.mmio_write_ns, 50);
    EXPECT_EQ(cfg.posted_visibility_ns, 400);
    EXPECT_EQ(cfg.wc_store_ns, 2);
    EXPECT_EQ(cfg.sfence_ns, 60);
    EXPECT_EQ(cfg.cache_hit_ns, 2);
    EXPECT_EQ(cfg.clflush_ns, 40);
    EXPECT_EQ(cfg.nic_uncached_access_ns, 95);
    EXPECT_EQ(cfg.nic_wb_access_ns, 5);
    EXPECT_EQ(cfg.msix_send_ns, 70);
    EXPECT_EQ(cfg.msix_send_ioctl_ns, 340);
    EXPECT_EQ(cfg.msix_receive_ns, 350);
    EXPECT_EQ(cfg.msix_end_to_end_ns, 1600);
    EXPECT_EQ(cfg.dma_setup_ns, 1000);
    EXPECT_EQ(cfg.dma_doorbell_writes, 2);
    EXPECT_DOUBLE_EQ(cfg.dma_bytes_per_ns, 20.0);
    EXPECT_DOUBLE_EQ(cfg.dma_remote_numa_factor, 0.85);
    EXPECT_FALSE(cfg.coherent);
    EXPECT_EQ(pcie::PcieConfig::kLineSize, 64u);
    EXPECT_EQ(pcie::PcieConfig::kWordSize, 8u);
}

TEST(Calibration, UpiPresetForCoherentInterconnect)
{
    const pcie::PcieConfig cfg = pcie::PcieConfig::Upi();
    EXPECT_EQ(cfg.mmio_read_ns, 220);
    EXPECT_EQ(cfg.mmio_write_ns, 25);
    EXPECT_EQ(cfg.posted_visibility_ns, 110);
    EXPECT_EQ(cfg.wc_store_ns, 2);
    EXPECT_EQ(cfg.sfence_ns, 40);
    EXPECT_EQ(cfg.clflush_ns, 0);
    EXPECT_EQ(cfg.nic_uncached_access_ns, 45);
    EXPECT_EQ(cfg.nic_wb_access_ns, 5);
    EXPECT_EQ(cfg.msix_send_ns, 60);
    EXPECT_EQ(cfg.msix_send_ioctl_ns, 200);
    EXPECT_EQ(cfg.msix_receive_ns, 350);
    EXPECT_EQ(cfg.msix_end_to_end_ns, 950);
    EXPECT_EQ(cfg.dma_setup_ns, 600);
    EXPECT_DOUBLE_EQ(cfg.dma_bytes_per_ns, 30.0);
    EXPECT_TRUE(cfg.coherent);
}

TEST(Calibration, GhostKernelCosts)
{
    const ghost::GhostCosts costs;
    EXPECT_EQ(costs.msg_prep_ns, 350);
    EXPECT_EQ(costs.commit_ns, 400);
    EXPECT_EQ(costs.context_switch_ns, 1300);
    EXPECT_EQ(costs.tick_ns, 12'600);
    EXPECT_EQ(costs.tick_period_ns, 1'000'000);
}

TEST(Calibration, MachineShape)
{
    const machine::MachineConfig mc;
    EXPECT_EQ(mc.host_cores, 16);
    EXPECT_EQ(mc.ccx_size, 8);
    EXPECT_DOUBLE_EQ(mc.host_speed, 1.0);
    EXPECT_EQ(mc.nic_cores, 16);
    EXPECT_DOUBLE_EQ(mc.nic_speed, 0.61);
}

TEST(Calibration, TurboCurveKnots)
{
    const machine::TurboModel::Config cfg;
    const machine::TurboModel::Curve deep = {{1, 3.50},  {8, 3.50},
                                             {16, 3.40}, {32, 3.20},
                                             {48, 2.90}, {64, 2.60}};
    const machine::TurboModel::Curve shallow = {{1, 3.20},  {8, 3.20},
                                                {16, 3.13}, {32, 2.95},
                                                {48, 2.78}, {64, 2.60}};
    EXPECT_EQ(cfg.deep_idle, deep);
    EXPECT_EQ(cfg.shallow_idle, shallow);
    EXPECT_DOUBLE_EQ(cfg.base_ghz, 2.45);

    // The Figure 5b headline endpoint: one active core gains ~9.4%
    // from deep idle siblings (3.50 vs 3.20 GHz).
    const machine::TurboModel model;
    EXPECT_DOUBLE_EQ(model.Frequency(1, /*idle_cores_deep=*/true).ghz(),
                     3.50);
    EXPECT_DOUBLE_EQ(model.Frequency(1, /*idle_cores_deep=*/false).ghz(),
                     3.20);
}

TEST(Calibration, OffloadStageCostTable)
{
    // The contention sweeps (bench_offload_sweep, EXPERIMENTS.md) are a
    // direct function of these reference-core numbers; see
    // docs/offload.md for the derivation. Byte-wise rates are
    // cycles/byte at the 3.5 GHz reference clock (1 cycle ≈ 0.2857 ns).
    const offload::OffloadCosts costs;
    EXPECT_EQ(costs.firewall.base_ns.ns(), 40);
    EXPECT_DOUBLE_EQ(costs.firewall.ns_per_byte, 0.0);
    EXPECT_EQ(costs.load_balancer.base_ns.ns(), 60);
    EXPECT_DOUBLE_EQ(costs.load_balancer.ns_per_byte, 0.0);
    EXPECT_EQ(costs.http_parser.base_ns.ns(), 50);
    EXPECT_DOUBLE_EQ(costs.http_parser.ns_per_byte, 0.6);
    EXPECT_EQ(costs.aes_ctr.base_ns.ns(), 80);
    EXPECT_DOUBLE_EQ(costs.aes_ctr.ns_per_byte, 2.9);
    EXPECT_EQ(costs.sha256.base_ns.ns(), 60);
    EXPECT_DOUBLE_EQ(costs.sha256.ns_per_byte, 3.7);
    EXPECT_EQ(costs.regex_scan.base_ns.ns(), 30);
    EXPECT_DOUBLE_EQ(costs.regex_scan.ns_per_byte, 1.1);
    EXPECT_EQ(costs.monitor.base_ns.ns(), 35);
    EXPECT_DOUBLE_EQ(costs.monitor.ns_per_byte, 0.0);
}

TEST(Calibration, OffloadStageCostArithmetic)
{
    const offload::OffloadCosts costs;
    // Header-only stages ignore the payload length entirely.
    EXPECT_EQ(offload::StageCostNs(costs.firewall, 0).ns(), 40);
    EXPECT_EQ(offload::StageCostNs(costs.firewall, 1500).ns(), 40);
    // Byte-wise stages: base + rate * len, rounded via DurationNs.
    EXPECT_EQ(offload::StageCostNs(costs.aes_ctr, 0).ns(), 80);
    EXPECT_EQ(offload::StageCostNs(costs.aes_ctr, 1000).ns(), 80 + 2900);
    EXPECT_EQ(offload::StageCostNs(costs.sha256, 200).ns(), 60 + 740);
    EXPECT_EQ(offload::StageCostNs(costs.http_parser, 500).ns(), 50 + 300);
    // A full-MTU packet through the whole default chain: the number a
    // NIC core pays per packet in run-to-completion placement.
    sim::DurationNs full{};
    for (const offload::StageCost* c :
         {&costs.firewall, &costs.load_balancer, &costs.http_parser,
          &costs.aes_ctr, &costs.sha256, &costs.regex_scan,
          &costs.monitor}) {
        full = full + offload::StageCostNs(*c, 1500);
    }
    EXPECT_EQ(full.ns(), 355 + 12'450);
}

TEST(Calibration, SwapDeviceNvmeClassDefaults)
{
    const memmgr::SwapConfig cfg;
    EXPECT_EQ(cfg.op_latency_ns, 8'000);
    EXPECT_DOUBLE_EQ(cfg.bytes_per_ns, 3.2);
    EXPECT_EQ(cfg.channels, 8u);
}

}  // namespace
}  // namespace wave
