/**
 * @file
 * Watchdog-fallback recovery suite (§3.3).
 *
 * The paper's claim: when an offloaded agent dies or wedges, the
 * on-host watchdog kills it and scheduling falls back to host system
 * software; recovery is simple because the kernel never stopped being
 * the source of truth (§6). These tests kill or stall the Wave agent
 * at randomized points of a live run — transactions in flight, queues
 * half-drained, prestaging active — and assert that every in-flight
 * task completes through the fallback within bounded virtual time with
 * zero coherence/protocol/happens-before violations.
 */
#include <gtest/gtest.h>

#include "fuzz/runner.h"
#include "fuzz/scenario.h"
#include "sim/inject.h"
#include "sim/random.h"

namespace wave::fuzz {
namespace {

using sim::inject::FaultKind;

/** A benign deployment for @p seed with an empty fault schedule. */
Scenario
BaseScenario(std::uint64_t seed)
{
    GenLimits none;
    none.max_faults = 0;
    return GenerateScenario(seed, none);
}

TEST(Recovery, AgentCrashAtRandomizedPointsCompletesViaFallback)
{
    // Crash points drawn from a dedicated named stream: anywhere in the
    // live window, including mid-warmup (transactions in flight from
    // the very first decisions) and deep in the measured region (queues
    // half-drained, prestaging warm).
    sim::Rng points(sim::StreamSeed(2026, "recovery-crash-points"));
    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
        Scenario s = BaseScenario(seed);
        const sim::TimeNs at = static_cast<sim::TimeNs>(points.NextInRange(
            s.warmup_ns / 2, s.warmup_ns + (s.measure_ns * 3) / 4));
        s.faults.push_back({FaultKind::kAgentCrash, at, 0, 0});

        const RunResult r = RunScenario(s);
        EXPECT_TRUE(r.Ok()) << "seed " << seed << " crash@" << at.ns() << ":\n"
                            << r.Describe();
        EXPECT_EQ(r.watchdog_expiries, 1u) << "seed " << seed;
        EXPECT_TRUE(r.fallback_active) << "seed " << seed;
        EXPECT_GT(r.completed, 0u);
        EXPECT_EQ(r.pending_at_end, 0u)
            << "in-flight tasks stranded after fallback (seed " << seed
            << ")";
    }
}

TEST(Recovery, WedgedAgentTripsWatchdogAndFallsBack)
{
    // A stall far beyond the watchdog timeout is indistinguishable from
    // death: the dog must fire even though the agent coroutine is alive.
    sim::Rng points(sim::StreamSeed(2026, "recovery-stall-points"));
    for (std::uint64_t seed = 5; seed <= 7; ++seed) {
        Scenario s = BaseScenario(seed);
        const sim::TimeNs at = static_cast<sim::TimeNs>(
            points.NextInRange(s.warmup_ns, s.warmup_ns + s.measure_ns / 2));
        s.faults.push_back(
            {FaultKind::kAgentStall, at, 4 * s.watchdog_timeout_ns, 0});

        const RunResult r = RunScenario(s);
        EXPECT_TRUE(r.Ok()) << "seed " << seed << " stall@" << at.ns() << ":\n"
                            << r.Describe();
        EXPECT_EQ(r.watchdog_expiries, 1u) << "seed " << seed;
        EXPECT_TRUE(r.fallback_active) << "seed " << seed;
        EXPECT_EQ(r.pending_at_end, 0u) << "seed " << seed;
    }
}

TEST(Recovery, TransientStallSurvivesWithoutFallback)
{
    // A hiccup shorter than the timeout must ride out: the agent
    // resumes, feeds the dog, and keeps its job.
    Scenario s = BaseScenario(8);
    s.faults.push_back({FaultKind::kAgentStall,
                        static_cast<sim::TimeNs>(s.warmup_ns),
                        s.watchdog_timeout_ns / 4, 0});

    const RunResult r = RunScenario(s);
    EXPECT_TRUE(r.Ok()) << r.Describe();
    EXPECT_EQ(r.watchdog_expiries, 0u);
    EXPECT_FALSE(r.fallback_active);
    EXPECT_EQ(r.pending_at_end, 0u);
}

TEST(Recovery, CrashDuringCommitFailBurstStillRecovers)
{
    // Compound fault: the agent dies inside a window where the host is
    // rejecting commits — the fallback must still drain everything.
    Scenario s = BaseScenario(9);
    const sim::TimeNs mid{s.warmup_ns + s.measure_ns / 3};
    s.faults.push_back({FaultKind::kCommitFailBurst, mid, 2'000'000, 0});
    s.faults.push_back({FaultKind::kAgentCrash, mid + 300'000, 0, 0});

    const RunResult r = RunScenario(s);
    EXPECT_TRUE(r.Ok()) << r.Describe();
    EXPECT_TRUE(r.fallback_active);
    EXPECT_EQ(r.pending_at_end, 0u);
}

TEST(Recovery, FallbackArrivesWithinBoundedVirtualTime)
{
    // The recovery latency bound: kill the agent, and the watchdog must
    // fire within timeout + one check interval of the stall beginning.
    Scenario s = BaseScenario(10);
    const sim::TimeNs at{s.warmup_ns + s.measure_ns / 2};
    s.faults.push_back({FaultKind::kAgentCrash, at, 0, 0});

    const RunResult r = RunScenario(s);
    ASSERT_TRUE(r.fallback_active) << r.Describe();
    EXPECT_TRUE(r.Ok()) << r.Describe();
    // Liveness evidence freezes at the crash; the dog has `timeout` of
    // grace, polls every check interval, and the feed task samples on
    // its own interval — allow both quantization steps.
    const std::uint64_t bound =
        at.ns() + s.watchdog_timeout_ns + 3 * s.watchdog_check_ns;
    EXPECT_GE(r.fallback_at, at.ns());
    EXPECT_LE(r.fallback_at, bound)
        << "watchdog took too long to declare the agent dead";
}

}  // namespace
}  // namespace wave::fuzz
