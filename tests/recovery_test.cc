/**
 * @file
 * Watchdog-fallback recovery suite (§3.3).
 *
 * The paper's claim: when an offloaded agent dies or wedges, the
 * on-host watchdog kills it and scheduling falls back to host system
 * software; recovery is simple because the kernel never stopped being
 * the source of truth (§6). These tests kill or stall the Wave agent
 * at randomized points of a live run — transactions in flight, queues
 * half-drained, prestaging active — and assert that every in-flight
 * task completes through the fallback within bounded virtual time with
 * zero coherence/protocol/happens-before violations.
 */
#include <gtest/gtest.h>

#include "fuzz/runner.h"
#include "fuzz/scenario.h"
#include "offload/sweep.h"
#include "sim/inject.h"
#include "sim/random.h"

namespace wave::fuzz {
namespace {

using sim::inject::FaultKind;

/** A benign deployment for @p seed with an empty fault schedule. */
Scenario
BaseScenario(std::uint64_t seed)
{
    GenLimits none;
    none.max_faults = 0;
    return GenerateScenario(seed, none);
}

TEST(Recovery, AgentCrashAtRandomizedPointsCompletesViaFallback)
{
    // Crash points drawn from a dedicated named stream: anywhere in the
    // live window, including mid-warmup (transactions in flight from
    // the very first decisions) and deep in the measured region (queues
    // half-drained, prestaging warm).
    sim::Rng points(sim::StreamSeed(2026, "recovery-crash-points"));
    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
        Scenario s = BaseScenario(seed);
        const sim::TimeNs at = static_cast<sim::TimeNs>(points.NextInRange(
            s.warmup_ns / 2, s.warmup_ns + (s.measure_ns * 3) / 4));
        s.faults.push_back({FaultKind::kAgentCrash, at, 0, 0});

        const RunResult r = RunScenario(s);
        EXPECT_TRUE(r.Ok()) << "seed " << seed << " crash@" << at.ns() << ":\n"
                            << r.Describe();
        EXPECT_EQ(r.watchdog_expiries, 1u) << "seed " << seed;
        EXPECT_TRUE(r.fallback_active) << "seed " << seed;
        EXPECT_GT(r.completed, 0u);
        EXPECT_EQ(r.pending_at_end, 0u)
            << "in-flight tasks stranded after fallback (seed " << seed
            << ")";
    }
}

TEST(Recovery, WedgedAgentTripsWatchdogAndFallsBack)
{
    // A stall far beyond the watchdog timeout is indistinguishable from
    // death: the dog must fire even though the agent coroutine is alive.
    sim::Rng points(sim::StreamSeed(2026, "recovery-stall-points"));
    for (std::uint64_t seed = 5; seed <= 7; ++seed) {
        Scenario s = BaseScenario(seed);
        const sim::TimeNs at = static_cast<sim::TimeNs>(
            points.NextInRange(s.warmup_ns, s.warmup_ns + s.measure_ns / 2));
        s.faults.push_back(
            {FaultKind::kAgentStall, at, 4 * s.watchdog_timeout_ns, 0});

        const RunResult r = RunScenario(s);
        EXPECT_TRUE(r.Ok()) << "seed " << seed << " stall@" << at.ns() << ":\n"
                            << r.Describe();
        EXPECT_EQ(r.watchdog_expiries, 1u) << "seed " << seed;
        EXPECT_TRUE(r.fallback_active) << "seed " << seed;
        EXPECT_EQ(r.pending_at_end, 0u) << "seed " << seed;
    }
}

TEST(Recovery, TransientStallSurvivesWithoutFallback)
{
    // A hiccup shorter than the timeout must ride out: the agent
    // resumes, feeds the dog, and keeps its job.
    Scenario s = BaseScenario(8);
    s.faults.push_back({FaultKind::kAgentStall,
                        static_cast<sim::TimeNs>(s.warmup_ns),
                        s.watchdog_timeout_ns / 4, 0});

    const RunResult r = RunScenario(s);
    EXPECT_TRUE(r.Ok()) << r.Describe();
    EXPECT_EQ(r.watchdog_expiries, 0u);
    EXPECT_FALSE(r.fallback_active);
    EXPECT_EQ(r.pending_at_end, 0u);
}

TEST(Recovery, CrashDuringCommitFailBurstStillRecovers)
{
    // Compound fault: the agent dies inside a window where the host is
    // rejecting commits — the fallback must still drain everything.
    Scenario s = BaseScenario(9);
    const sim::TimeNs mid{s.warmup_ns + s.measure_ns / 3};
    s.faults.push_back({FaultKind::kCommitFailBurst, mid, 2'000'000, 0});
    s.faults.push_back({FaultKind::kAgentCrash, mid + 300'000, 0, 0});

    const RunResult r = RunScenario(s);
    EXPECT_TRUE(r.Ok()) << r.Describe();
    EXPECT_TRUE(r.fallback_active);
    EXPECT_EQ(r.pending_at_end, 0u);
}

TEST(Recovery, FallbackArrivesWithinBoundedVirtualTime)
{
    // The recovery latency bound: kill the agent, and the watchdog must
    // fire within timeout + one check interval of the stall beginning.
    Scenario s = BaseScenario(10);
    const sim::TimeNs at{s.warmup_ns + s.measure_ns / 2};
    s.faults.push_back({FaultKind::kAgentCrash, at, 0, 0});

    const RunResult r = RunScenario(s);
    ASSERT_TRUE(r.fallback_active) << r.Describe();
    EXPECT_TRUE(r.Ok()) << r.Describe();
    // Liveness evidence freezes at the crash; the dog has `timeout` of
    // grace, polls every check interval, and the feed task samples on
    // its own interval — allow both quantization steps.
    const std::uint64_t bound =
        at.ns() + s.watchdog_timeout_ns + 3 * s.watchdog_check_ns;
    EXPECT_GE(r.fallback_at, at.ns());
    EXPECT_LE(r.fallback_at, bound)
        << "watchdog took too long to declare the agent dead";
}

TEST(Recovery, NicSlowdownPlusAgentStallTripsWatchdogUnderOffloadLoad)
{
    // Fault interplay through the offload-sweep wiring: the NIC domain
    // drops to quarter speed (backing up the datapath rings and
    // stretching every agent iteration) and, inside that window, the
    // agent wedges for longer than the watchdog timeout. The dog must
    // still fire on schedule — a slow NIC is degraded, a silent agent
    // is dead — and the handoff must not strand datapath packets:
    // dedicated workers keep draining while scheduling fails over to
    // the host fallback.
    offload::OffloadSweepConfig cfg;
    cfg.worker_cores = 4;
    cfg.num_workers = 16;
    cfg.nic_cores = 4;
    cfg.core_share = 0.5;
    cfg.full_rate_pps = 400'000;
    cfg.flows = 64;
    cfg.offered_rps = 100'000;
    cfg.warmup_ns = 5'000'000;
    cfg.measure_ns = 30'000'000;
    cfg.drain_ns = 8'000'000;
    cfg.seed = 777;
    cfg.supervise = true;
    cfg.watchdog_timeout_ns = 4'000'000;
    cfg.watchdog_check_ns = 250'000;

    constexpr std::uint64_t kStallAt = 10'000'000;
    cfg.faults.push_back({FaultKind::kNicSlowdown,
                          sim::TimeNs{8'000'000}, 15'000'000,
                          /*param=*/250});  // quarter speed
    cfg.faults.push_back({FaultKind::kAgentStall, sim::TimeNs{kStallAt},
                          5 * cfg.watchdog_timeout_ns, 0});

    const offload::OffloadSweepResult r = offload::RunOffloadSweep(cfg);

    EXPECT_EQ(r.watchdog_expiries, 1u)
        << "the stall outlasts the timeout; slowdown alone must not "
           "mask it";
    EXPECT_TRUE(r.fallback_active);
    // Liveness evidence freezes at the stall; timeout of grace plus the
    // check/feed quantization steps bound the failover.
    EXPECT_GE(r.fallback_at_ns, kStallAt);
    EXPECT_LE(r.fallback_at_ns,
              kStallAt + cfg.watchdog_timeout_ns + 3 * cfg.watchdog_check_ns)
        << "watchdog took too long to declare the wedged agent dead";

    // No deadlock: the datapath backlog built up during the slowdown
    // drains once the domain recovers, and the KV workload keeps
    // completing through the fallback scheduler.
    EXPECT_GT(r.packets_completed, 0u);
    EXPECT_EQ(r.packets_dropped, 0u);
    EXPECT_EQ(r.packets_pending, 0u)
        << "packets stranded in the pipeline after fault recovery";
    EXPECT_GT(r.completed, 0u);
}

TEST(Recovery, OffloadSweepSupervisorIsQuietWithoutFaults)
{
    // The false-positive guard for the test above: the identical
    // deployment under the identical datapath load, minus the faults,
    // must never trip the dog — offload contention alone is not a
    // liveness failure.
    offload::OffloadSweepConfig cfg;
    cfg.worker_cores = 4;
    cfg.num_workers = 16;
    cfg.nic_cores = 4;
    cfg.core_share = 0.5;
    cfg.full_rate_pps = 400'000;
    cfg.flows = 64;
    cfg.offered_rps = 100'000;
    cfg.warmup_ns = 5'000'000;
    cfg.measure_ns = 30'000'000;
    cfg.drain_ns = 8'000'000;
    cfg.seed = 777;
    cfg.supervise = true;
    cfg.watchdog_timeout_ns = 4'000'000;
    cfg.watchdog_check_ns = 250'000;

    const offload::OffloadSweepResult r = offload::RunOffloadSweep(cfg);
    EXPECT_EQ(r.watchdog_expiries, 0u);
    EXPECT_FALSE(r.fallback_active);
    EXPECT_GT(r.packets_completed, 0u);
    EXPECT_EQ(r.packets_pending, 0u);
}

}  // namespace
}  // namespace wave::fuzz
