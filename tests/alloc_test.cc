/**
 * @file
 * Steady-state zero-allocation assertions for the hot loops.
 *
 * These are the dynamic twin of wave_analyze's W101 rule: the static
 * checker proves hot code *looks* allocation-free, these tests prove
 * the loops *are*. Each test runs one warmup pass — growing every ring,
 * pool, and reused buffer to its steady-state capacity — then measures
 * an identical pass under sim::AllocGuard and asserts the global
 * operator new was never entered.
 *
 * This binary links wave_alloc_guard, which replaces the global
 * allocation functions with counting wrappers; production targets must
 * not.
 */
// wave-domain: harness
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <vector>

#include "channel/dma_queue.h"
#include "machine/cpu.h"
#include "offload/kernels.h"
#include "offload/packet.h"
#include "offload/pipeline.h"
#include "offload/stage.h"
#include "sim/alloc_guard.h"
#include "sim/simulator.h"
#include "sim/sync.h"
#include "stats/histogram.h"

namespace wave {
namespace {

using channel::Bytes;
using channel::QueueConfig;
using sim::AllocGuard;
using sim::DurationNs;
using sim::Simulator;
using sim::Task;

Bytes
Msg(std::uint64_t v)
{
    Bytes b(48);
    std::memcpy(b.data(), &v, sizeof(v));
    return b;
}

// The zero-allocation assertions below are vacuous if the counting
// operator new somehow failed to replace the default one, so first
// prove the guard sees a deliberate allocation.
TEST(AllocGuard, CountsDeliberateAllocations)
{
    AllocGuard guard;
    auto owned = std::make_unique<std::uint64_t>(42);
    EXPECT_GE(guard.Allocations(), 1u);
    EXPECT_GE(guard.Bytes(), sizeof(std::uint64_t));
    owned.reset();
    EXPECT_GE(guard.Frees(), 1u);
}

TEST(AllocGuard, SimulatorEventLoopIsAllocationFreeInSteadyState)
{
    Simulator sim;
    std::uint64_t sink = 0;
    const auto run_round = [&] {
        for (int i = 0; i < 1000; ++i) {
            sim.Schedule(static_cast<DurationNs>(i % 64),
                         [&sink] { ++sink; });
        }
        sim.Run();
    };

    run_round();  // warmup: event queue reaches steady-state capacity

    AllocGuard guard;
    for (int round = 0; round < 10; ++round) {
        run_round();
    }
    EXPECT_EQ(guard.Allocations(), 0u)
        << "scheduling/running pooled events should reuse warm capacity";
    EXPECT_EQ(sink, 11'000u);
}

TEST(AllocGuard, TimingWheelStaysAllocationFreeAcrossAllTiers)
{
    // Exercises every tier of the wheel in the measured region: sub-page
    // delays (near wheel), multi-page delays (far ring), and delays
    // beyond the ~16.8 ms far horizon (overflow heap), plus keyed
    // events for the sorted-insert path. After warmup the node pool and
    // the overflow heap's reserved capacity must absorb all of it.
    Simulator sim;
    std::uint64_t sink = 0;
    const auto run_round = [&] {
        for (int i = 0; i < 500; ++i) {
            const DurationNs delay = i % 97 == 0 ? DurationNs{30'000'000}
                                     : i % 31 == 0
                                         ? DurationNs{200'000}
                                         : static_cast<DurationNs>(i % 64);
            if (i % 16 == 0) {
                sim.ScheduleKeyed(delay, static_cast<std::uint64_t>(i),
                                  [&sink] { ++sink; });
            } else {
                sim.Schedule(delay, [&sink] { ++sink; });
            }
        }
        sim.Run();
    };

    run_round();  // warmup: node pool covers the peak backlog

    AllocGuard guard;
    for (int round = 0; round < 10; ++round) {
        run_round();
    }
    EXPECT_EQ(guard.Allocations(), 0u)
        << "near/far/overflow wheel traffic should reuse pooled nodes";
    EXPECT_EQ(sink, 5'500u);
}

TEST(AllocGuard, ChannelCoroutineLoopIsAllocationFreeInSteadyState)
{
    // The measured region lives inside one long-running producer /
    // consumer pair: that is the steady state the W101 annotations
    // claim is allocation-free. (Spawning fresh root processes is NOT
    // allocation-free per spawn — completed root frames recycle in
    // batches at the simulator's sweep interval.)
    constexpr int kWarmup = 256;
    constexpr int kMeasured = 1024;

    Simulator sim;
    sim::Channel<int> channel(sim);
    channel.Reserve(64);

    std::uint64_t received = 0;
    std::uint64_t measured_allocs = ~0ull;
    // Consumer first so Receive() parks a waiter in the signal ring.
    sim.Spawn([](sim::Channel<int>& ch, std::uint64_t& sum,
                 std::uint64_t& allocs) -> Task<> {
        for (int i = 0; i < kWarmup; ++i) {
            sum += static_cast<std::uint64_t>(co_await ch.Receive());
        }
        const AllocGuard guard;  // frame pool + rings now warm
        for (int i = 0; i < kMeasured; ++i) {
            sum += static_cast<std::uint64_t>(co_await ch.Receive());
        }
        allocs = guard.Allocations();
    }(channel, received, measured_allocs));
    sim.Spawn([](Simulator& s, sim::Channel<int>& ch) -> Task<> {
        for (int i = 0; i < kWarmup + kMeasured; ++i) {
            ch.Push(i);
            co_await s.Delay(10);
        }
    }(sim, channel));
    sim.Run();

    EXPECT_EQ(measured_allocs, 0u)
        << "Push/Receive over a warm channel should recycle pooled "
           "frames and ring slots";
    const std::uint64_t n = kWarmup + kMeasured;
    EXPECT_EQ(received, n * (n - 1) / 2);
}

TEST(AllocGuard, DmaQueueSendPollLoopIsAllocationFreeInSteadyState)
{
    // Like the channel test, one long-running process measures its own
    // steady state. The Delay between Send and the polls lets the async
    // DMA land so every round exercises the poll-success path, and
    // sync_interval=16 forces the counter-sync DMA inside the measured
    // region too. Warmup must include successful polls: the reused
    // payload buffer and the counter-sync completion only warm up once
    // a poll has succeeded.
    constexpr int kWarmupRounds = 8;
    constexpr int kMeasuredRounds = 16;

    Simulator sim;
    pcie::DmaEngine dma(sim, pcie::PcieConfig{});
    channel::DmaQueue queue(sim, dma, pcie::DmaInitiator::kNic,
                            QueueConfig{.capacity = 256,
                                        .payload_size = 48,
                                        .sync_interval = 16});

    // Send copies out of the reused batch; PollInto resizes the reused
    // payload within retained capacity. Neither touches the heap warm.
    std::vector<Bytes> batch;
    for (std::uint64_t i = 0; i < 8; ++i) batch.push_back(Msg(i));

    std::uint64_t polled = 0;
    std::uint64_t measured_allocs = ~0ull;
    sim.Spawn([](Simulator& s, channel::DmaQueue& q,
                 std::vector<Bytes>& b, std::uint64_t& n,
                 std::uint64_t& allocs) -> Task<> {
        Bytes payload;
        for (int r = 0; r < kWarmupRounds; ++r) {
            co_await q.Send(b, /*sync=*/false);
            co_await s.Delay(50'000);  // async transfer lands
            for (std::size_t i = 0; i < b.size(); ++i) {
                if (co_await q.PollInto(payload)) ++n;
            }
        }
        const AllocGuard guard;
        for (int r = 0; r < kMeasuredRounds; ++r) {
            co_await q.Send(b, /*sync=*/false);
            co_await s.Delay(50'000);
            for (std::size_t i = 0; i < b.size(); ++i) {
                if (co_await q.PollInto(payload)) ++n;
            }
        }
        allocs = guard.Allocations();
    }(sim, queue, batch, polled, measured_allocs));
    sim.Run();

    EXPECT_EQ(measured_allocs, 0u)
        << "warm DmaQueue Send/PollInto cycles should be allocation-free";
    EXPECT_EQ(polled,
              static_cast<std::uint64_t>(kWarmupRounds + kMeasuredRounds) *
                  8);
}

offload::FiveTuple
FlowTupleFor(std::uint32_t flow)
{
    return offload::FiveTuple{
        .src_ip = 0x0a000000u | flow,
        .dst_ip = 0xc0a80001u,
        .src_port = static_cast<std::uint16_t>(1024 + flow),
        .dst_port = 80,
        .proto = 6};
}

TEST(AllocGuard, OffloadStageDispatchIsAllocationFreeInSteadyState)
{
    // StageChain construction allocates (ACL, automaton, sketches,
    // connection-table reserve); dispatch must not. The warmup pass
    // covers the full flow universe so the load balancer's connection
    // table takes every node insert before the guard goes up — the
    // measured passes are pure lookups plus the compute kernels over
    // the inline payload.
    constexpr std::uint32_t kFlows = 64;

    offload::StageChainConfig cfg;
    cfg.expected_flows = kFlows;
    offload::StageChain chain(cfg);

    auto packet = std::make_unique<offload::Packet>();
    const auto run_pass = [&] {
        for (std::uint32_t flow = 0; flow < kFlows; ++flow) {
            offload::Packet& p = *packet;
            p.tuple = FlowTupleFor(flow);
            const std::size_t header = offload::RenderHttpGet(
                flow, p.payload.data(), offload::kMaxPayloadBytes);
            offload::FillRandomBytes(flow * 7919ull + 1,
                                     p.payload.data() + header, 512);
            p.payload_len = static_cast<std::uint32_t>(header + 512);
            p.acl_allowed = 1;
            p.http_ok = 0;
            p.backend = 0;
            p.scan_hits = 0;
            p.digest = 0;
            bool alive = true;
            chain.Process(p, &alive);
            EXPECT_TRUE(alive);
        }
    };

    run_pass();  // warmup: every flow inserted into the connection table

    AllocGuard guard;
    for (int r = 0; r < 8; ++r) {
        run_pass();
    }
    EXPECT_EQ(guard.Allocations(), 0u)
        << "full-chain dispatch over a warm connection table should "
           "never allocate";
    EXPECT_EQ(chain.ConnectionCount(), kFlows);
    EXPECT_EQ(chain.Stats(offload::StageKind::kFirewall).packets,
              9ull * kFlows);
}

TEST(AllocGuard, OffloadPipelineLoopIsAllocationFreeInSteadyState)
{
    // End-to-end: Inject materializes into the pooled packet slots and
    // the long-lived worker coroutines (spawned once by Start) pull,
    // Work, and Route. After one round the packet pool, segment rings,
    // Work-coroutine frame pool, and connection table are all warm;
    // further rounds — including the event loop driving them — must
    // stay off the heap.
    constexpr std::uint32_t kFlows = 64;
    constexpr int kMeasuredRounds = 6;

    Simulator sim;
    machine::ClockDomain nic(0.61);
    machine::Cpu cpu0(sim, "nic0", &nic);
    machine::Cpu cpu1(sim, "nic1", &nic);

    offload::PipelineConfig cfg;
    cfg.pool_size = 256;
    cfg.chain.expected_flows = kFlows;
    offload::OffloadPipeline pipeline(sim, cfg);
    pipeline.AddWorker(cpu0);
    pipeline.AddWorker(cpu1);
    pipeline.Start();

    const auto run_round = [&] {
        for (std::uint32_t flow = 0; flow < kFlows; ++flow) {
            offload::PacketDesc d;
            d.tuple = FlowTupleFor(flow);
            d.payload_len = 600;
            d.payload_seed = flow * 6364136223846793005ull + 11;
            d.http = true;
            d.http_key = flow;
            EXPECT_TRUE(pipeline.Inject(d));
        }
        sim.RunFor(sim::DurationNs{2'000'000});  // drain the burst
    };

    run_round();  // warmup

    AllocGuard guard;
    for (int r = 0; r < kMeasuredRounds; ++r) {
        run_round();
    }
    const std::uint64_t measured_allocs = guard.Allocations();

    pipeline.RequestStop();
    sim.RunFor(sim::DurationNs{10'000});  // workers observe the stop

    EXPECT_EQ(measured_allocs, 0u)
        << "warm Inject/worker/Retire rounds should reuse pooled "
           "packets, ring slots, and coroutine frames";
    EXPECT_EQ(pipeline.Stats().completed,
              static_cast<std::uint64_t>(kFlows) * (1 + kMeasuredRounds));
    EXPECT_EQ(pipeline.Stats().dropped, 0u);
    EXPECT_EQ(pipeline.Pending(), 0u);
}

TEST(AllocGuard, HistogramRecordIsAllocationFreeInSteadyState)
{
    stats::Histogram histogram;
    std::uint64_t v = 1;
    const auto run_pass = [&](int n) {
        for (int i = 0; i < n; ++i) {
            histogram.Record(v);
            v = v * 2862933555777941757ull + 3037000493ull;
            v >>= (v & 15);
        }
    };

    run_pass(4096);  // warmup: bucket table fully materialized

    AllocGuard guard;
    run_pass(4096);
    EXPECT_EQ(guard.Allocations(), 0u)
        << "Record into a warm histogram should never allocate";
}

}  // namespace
}  // namespace wave
