/**
 * @file
 * Steady-state zero-allocation assertions for the hot loops.
 *
 * These are the dynamic twin of wave_analyze's W101 rule: the static
 * checker proves hot code *looks* allocation-free, these tests prove
 * the loops *are*. Each test runs one warmup pass — growing every ring,
 * pool, and reused buffer to its steady-state capacity — then measures
 * an identical pass under sim::AllocGuard and asserts the global
 * operator new was never entered.
 *
 * This binary links wave_alloc_guard, which replaces the global
 * allocation functions with counting wrappers; production targets must
 * not.
 */
// wave-domain: harness
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <vector>

#include "channel/dma_queue.h"
#include "sim/alloc_guard.h"
#include "sim/simulator.h"
#include "sim/sync.h"
#include "stats/histogram.h"

namespace wave {
namespace {

using channel::Bytes;
using channel::QueueConfig;
using sim::AllocGuard;
using sim::DurationNs;
using sim::Simulator;
using sim::Task;

Bytes
Msg(std::uint64_t v)
{
    Bytes b(48);
    std::memcpy(b.data(), &v, sizeof(v));
    return b;
}

// The zero-allocation assertions below are vacuous if the counting
// operator new somehow failed to replace the default one, so first
// prove the guard sees a deliberate allocation.
TEST(AllocGuard, CountsDeliberateAllocations)
{
    AllocGuard guard;
    auto owned = std::make_unique<std::uint64_t>(42);
    EXPECT_GE(guard.Allocations(), 1u);
    EXPECT_GE(guard.Bytes(), sizeof(std::uint64_t));
    owned.reset();
    EXPECT_GE(guard.Frees(), 1u);
}

TEST(AllocGuard, SimulatorEventLoopIsAllocationFreeInSteadyState)
{
    Simulator sim;
    std::uint64_t sink = 0;
    const auto run_round = [&] {
        for (int i = 0; i < 1000; ++i) {
            sim.Schedule(static_cast<DurationNs>(i % 64),
                         [&sink] { ++sink; });
        }
        sim.Run();
    };

    run_round();  // warmup: event queue reaches steady-state capacity

    AllocGuard guard;
    for (int round = 0; round < 10; ++round) {
        run_round();
    }
    EXPECT_EQ(guard.Allocations(), 0u)
        << "scheduling/running pooled events should reuse warm capacity";
    EXPECT_EQ(sink, 11'000u);
}

TEST(AllocGuard, TimingWheelStaysAllocationFreeAcrossAllTiers)
{
    // Exercises every tier of the wheel in the measured region: sub-page
    // delays (near wheel), multi-page delays (far ring), and delays
    // beyond the ~16.8 ms far horizon (overflow heap), plus keyed
    // events for the sorted-insert path. After warmup the node pool and
    // the overflow heap's reserved capacity must absorb all of it.
    Simulator sim;
    std::uint64_t sink = 0;
    const auto run_round = [&] {
        for (int i = 0; i < 500; ++i) {
            const DurationNs delay = i % 97 == 0 ? DurationNs{30'000'000}
                                     : i % 31 == 0
                                         ? DurationNs{200'000}
                                         : static_cast<DurationNs>(i % 64);
            if (i % 16 == 0) {
                sim.ScheduleKeyed(delay, static_cast<std::uint64_t>(i),
                                  [&sink] { ++sink; });
            } else {
                sim.Schedule(delay, [&sink] { ++sink; });
            }
        }
        sim.Run();
    };

    run_round();  // warmup: node pool covers the peak backlog

    AllocGuard guard;
    for (int round = 0; round < 10; ++round) {
        run_round();
    }
    EXPECT_EQ(guard.Allocations(), 0u)
        << "near/far/overflow wheel traffic should reuse pooled nodes";
    EXPECT_EQ(sink, 5'500u);
}

TEST(AllocGuard, ChannelCoroutineLoopIsAllocationFreeInSteadyState)
{
    // The measured region lives inside one long-running producer /
    // consumer pair: that is the steady state the W101 annotations
    // claim is allocation-free. (Spawning fresh root processes is NOT
    // allocation-free per spawn — completed root frames recycle in
    // batches at the simulator's sweep interval.)
    constexpr int kWarmup = 256;
    constexpr int kMeasured = 1024;

    Simulator sim;
    sim::Channel<int> channel(sim);
    channel.Reserve(64);

    std::uint64_t received = 0;
    std::uint64_t measured_allocs = ~0ull;
    // Consumer first so Receive() parks a waiter in the signal ring.
    sim.Spawn([](sim::Channel<int>& ch, std::uint64_t& sum,
                 std::uint64_t& allocs) -> Task<> {
        for (int i = 0; i < kWarmup; ++i) {
            sum += static_cast<std::uint64_t>(co_await ch.Receive());
        }
        const AllocGuard guard;  // frame pool + rings now warm
        for (int i = 0; i < kMeasured; ++i) {
            sum += static_cast<std::uint64_t>(co_await ch.Receive());
        }
        allocs = guard.Allocations();
    }(channel, received, measured_allocs));
    sim.Spawn([](Simulator& s, sim::Channel<int>& ch) -> Task<> {
        for (int i = 0; i < kWarmup + kMeasured; ++i) {
            ch.Push(i);
            co_await s.Delay(10);
        }
    }(sim, channel));
    sim.Run();

    EXPECT_EQ(measured_allocs, 0u)
        << "Push/Receive over a warm channel should recycle pooled "
           "frames and ring slots";
    const std::uint64_t n = kWarmup + kMeasured;
    EXPECT_EQ(received, n * (n - 1) / 2);
}

TEST(AllocGuard, DmaQueueSendPollLoopIsAllocationFreeInSteadyState)
{
    // Like the channel test, one long-running process measures its own
    // steady state. The Delay between Send and the polls lets the async
    // DMA land so every round exercises the poll-success path, and
    // sync_interval=16 forces the counter-sync DMA inside the measured
    // region too. Warmup must include successful polls: the reused
    // payload buffer and the counter-sync completion only warm up once
    // a poll has succeeded.
    constexpr int kWarmupRounds = 8;
    constexpr int kMeasuredRounds = 16;

    Simulator sim;
    pcie::DmaEngine dma(sim, pcie::PcieConfig{});
    channel::DmaQueue queue(sim, dma, pcie::DmaInitiator::kNic,
                            QueueConfig{.capacity = 256,
                                        .payload_size = 48,
                                        .sync_interval = 16});

    // Send copies out of the reused batch; PollInto resizes the reused
    // payload within retained capacity. Neither touches the heap warm.
    std::vector<Bytes> batch;
    for (std::uint64_t i = 0; i < 8; ++i) batch.push_back(Msg(i));

    std::uint64_t polled = 0;
    std::uint64_t measured_allocs = ~0ull;
    sim.Spawn([](Simulator& s, channel::DmaQueue& q,
                 std::vector<Bytes>& b, std::uint64_t& n,
                 std::uint64_t& allocs) -> Task<> {
        Bytes payload;
        for (int r = 0; r < kWarmupRounds; ++r) {
            co_await q.Send(b, /*sync=*/false);
            co_await s.Delay(50'000);  // async transfer lands
            for (std::size_t i = 0; i < b.size(); ++i) {
                if (co_await q.PollInto(payload)) ++n;
            }
        }
        const AllocGuard guard;
        for (int r = 0; r < kMeasuredRounds; ++r) {
            co_await q.Send(b, /*sync=*/false);
            co_await s.Delay(50'000);
            for (std::size_t i = 0; i < b.size(); ++i) {
                if (co_await q.PollInto(payload)) ++n;
            }
        }
        allocs = guard.Allocations();
    }(sim, queue, batch, polled, measured_allocs));
    sim.Run();

    EXPECT_EQ(measured_allocs, 0u)
        << "warm DmaQueue Send/PollInto cycles should be allocation-free";
    EXPECT_EQ(polled,
              static_cast<std::uint64_t>(kWarmupRounds + kMeasuredRounds) *
                  8);
}

TEST(AllocGuard, HistogramRecordIsAllocationFreeInSteadyState)
{
    stats::Histogram histogram;
    std::uint64_t v = 1;
    const auto run_pass = [&](int n) {
        for (int i = 0; i < n; ++i) {
            histogram.Record(v);
            v = v * 2862933555777941757ull + 3037000493ull;
            v >>= (v & 15);
        }
    };

    run_pass(4096);  // warmup: bucket table fully materialized

    AllocGuard guard;
    run_pass(4096);
    EXPECT_EQ(guard.Allocations(), 0u)
        << "Record into a warm histogram should never allocate";
}

}  // namespace
}  // namespace wave
