/**
 * @file
 * Unit tests for the scheduling policies (pure decision logic): FIFO
 * ordering, Shinjuku preemption rules, multi-queue SLO priority, and
 * the VM policy's pinning and quantum behaviour.
 */
#include <gtest/gtest.h>

#include "sched/fifo.h"
#include "sched/shinjuku.h"
#include "sched/vm_policy.h"
#include "sim/random.h"

namespace wave::sched {
namespace {

using ghost::DecisionType;
using ghost::GhostMessage;
using ghost::MsgType;
using ghost::Tid;

GhostMessage
Msg(MsgType type, Tid tid, int core = 0)
{
    GhostMessage m{};
    m.type = type;
    m.tid = tid;
    m.core = core;
    return m;
}

TEST(Fifo, PicksInArrivalOrder)
{
    FifoPolicy policy;
    policy.OnMessage(Msg(MsgType::kThreadCreated, 1));
    policy.OnMessage(Msg(MsgType::kThreadCreated, 2));
    policy.OnMessage(Msg(MsgType::kThreadCreated, 3));
    EXPECT_EQ(policy.RunQueueDepth(), 3u);

    EXPECT_EQ(policy.PickNext(0, sim::TimeNs{0})->tid, 1);
    EXPECT_EQ(policy.PickNext(0, sim::TimeNs{0})->tid, 2);
    EXPECT_EQ(policy.PickNext(0, sim::TimeNs{0})->tid, 3);
    EXPECT_FALSE(policy.PickNext(0, sim::TimeNs{0}).has_value());
}

TEST(Fifo, DecisionTargetsTheRequestedCore)
{
    FifoPolicy policy;
    policy.OnMessage(Msg(MsgType::kThreadCreated, 5));
    auto d = policy.PickNext(3, sim::TimeNs{0});
    ASSERT_TRUE(d.has_value());
    EXPECT_EQ(d->core, 3);
    EXPECT_EQ(d->type, DecisionType::kRunThread);
    EXPECT_EQ(d->slice_ns, 0u) << "FIFO runs to completion";
}

TEST(Fifo, BlockedThreadIsNotRequeuedUntilWakeup)
{
    FifoPolicy policy;
    policy.OnMessage(Msg(MsgType::kThreadCreated, 1));
    ASSERT_TRUE(policy.PickNext(0, sim::TimeNs{0}).has_value());
    policy.OnMessage(Msg(MsgType::kThreadBlocked, 1));
    EXPECT_FALSE(policy.PickNext(0, sim::TimeNs{0}).has_value());
    policy.OnMessage(Msg(MsgType::kThreadWakeup, 1));
    EXPECT_EQ(policy.PickNext(0, sim::TimeNs{0})->tid, 1);
}

TEST(Fifo, DuplicateEnqueueIsIgnored)
{
    FifoPolicy policy;
    policy.OnMessage(Msg(MsgType::kThreadCreated, 1));
    policy.OnMessage(Msg(MsgType::kThreadWakeup, 1));  // already queued
    EXPECT_EQ(policy.RunQueueDepth(), 1u);
}

TEST(Fifo, DeadThreadsAreNeverPicked)
{
    FifoPolicy policy;
    policy.OnMessage(Msg(MsgType::kThreadCreated, 1));
    policy.OnMessage(Msg(MsgType::kThreadCreated, 2));
    policy.OnMessage(Msg(MsgType::kThreadDead, 1));
    auto d = policy.PickNext(0, sim::TimeNs{0});
    ASSERT_TRUE(d.has_value());
    EXPECT_EQ(d->tid, 2);
    EXPECT_FALSE(policy.PickNext(0, sim::TimeNs{0}).has_value());
}

TEST(Fifo, FailedCommitRequeuesAtFront)
{
    FifoPolicy policy;
    policy.OnMessage(Msg(MsgType::kThreadCreated, 1));
    policy.OnMessage(Msg(MsgType::kThreadCreated, 2));
    auto d = policy.PickNext(0, sim::TimeNs{0});
    ASSERT_TRUE(d.has_value());
    policy.OnDecisionFailed(*d);
    EXPECT_EQ(policy.PickNext(0, sim::TimeNs{0})->tid, 1) << "order preserved";
}

TEST(Fifo, FailedCommitOfDeadThreadIsDropped)
{
    FifoPolicy policy;
    policy.OnMessage(Msg(MsgType::kThreadCreated, 1));
    auto d = policy.PickNext(0, sim::TimeNs{0});
    ASSERT_TRUE(d.has_value());
    policy.OnMessage(Msg(MsgType::kThreadDead, 1));
    policy.OnDecisionFailed(*d);
    EXPECT_EQ(policy.RunQueueDepth(), 0u);
}

TEST(Fifo, NeverPreempts)
{
    FifoPolicy policy;
    policy.OnMessage(Msg(MsgType::kThreadCreated, 1));
    EXPECT_FALSE(policy.ShouldPreempt(0, 2, 1'000'000'000));
}

TEST(Shinjuku, PreemptsAfterSliceOnlyWhenWaitersExist)
{
    ShinjukuPolicy policy(30'000);
    EXPECT_FALSE(policy.ShouldPreempt(0, 1, 40'000))
        << "no waiters: let it run";
    policy.OnMessage(Msg(MsgType::kThreadCreated, 2));
    EXPECT_FALSE(policy.ShouldPreempt(0, 1, 20'000)) << "inside slice";
    EXPECT_TRUE(policy.ShouldPreempt(0, 1, 31'000));
}

TEST(Shinjuku, DecisionsCarryTheSlice)
{
    ShinjukuPolicy policy(30'000);
    policy.OnMessage(Msg(MsgType::kThreadCreated, 1));
    auto d = policy.PickNext(0, sim::TimeNs{0});
    ASSERT_TRUE(d.has_value());
    EXPECT_EQ(d->slice_ns, 30'000u);
}

TEST(Shinjuku, PreemptedThreadGoesToQueueBack)
{
    ShinjukuPolicy policy(30'000);
    policy.OnMessage(Msg(MsgType::kThreadCreated, 1));
    policy.OnMessage(Msg(MsgType::kThreadCreated, 2));
    ASSERT_EQ(policy.PickNext(0, sim::TimeNs{0})->tid, 1);
    // Thread 1 preempted: round-robin puts it behind thread 2.
    policy.OnMessage(Msg(MsgType::kThreadPreempted, 1));
    EXPECT_EQ(policy.PickNext(0, sim::TimeNs{0})->tid, 2);
    EXPECT_EQ(policy.PickNext(0, sim::TimeNs{0})->tid, 1);
}

TEST(MultiQueue, StrictClassIsServedFirst)
{
    MultiQueueShinjukuPolicy policy(30'000, 2);
    policy.SetThreadSlo(1, 1);  // lenient
    policy.SetThreadSlo(2, 0);  // strict
    policy.OnMessage(Msg(MsgType::kThreadCreated, 1));
    policy.OnMessage(Msg(MsgType::kThreadCreated, 2));
    auto d = policy.PickNext(0, sim::TimeNs{0});
    ASSERT_TRUE(d.has_value());
    EXPECT_EQ(d->tid, 2) << "strict SLO class first";
    EXPECT_EQ(d->slo_class, 0u);
    EXPECT_EQ(policy.PickNext(0, sim::TimeNs{0})->tid, 1);
}

TEST(MultiQueue, UntaggedThreadsAreLenient)
{
    MultiQueueShinjukuPolicy policy(30'000, 2);
    policy.SetThreadSlo(2, 0);
    policy.OnMessage(Msg(MsgType::kThreadCreated, 1));  // untagged
    policy.OnMessage(Msg(MsgType::kThreadCreated, 2));
    EXPECT_EQ(policy.PickNext(0, sim::TimeNs{0})->tid, 2);
}

TEST(MultiQueue, PreemptionConsidersClassOfWaiters)
{
    MultiQueueShinjukuPolicy policy(30'000, 2);
    policy.SetThreadSlo(1, 1);  // running, lenient
    policy.SetThreadSlo(2, 0);  // waiting, strict
    policy.OnMessage(Msg(MsgType::kThreadCreated, 2));
    EXPECT_TRUE(policy.ShouldPreempt(0, 1, 31'000));
    EXPECT_FALSE(policy.ShouldPreempt(0, 1, 29'000));
}

TEST(MultiQueue, DepthSumsAcrossClasses)
{
    MultiQueueShinjukuPolicy policy(30'000, 2);
    policy.SetThreadSlo(1, 0);
    policy.SetThreadSlo(2, 1);
    policy.OnMessage(Msg(MsgType::kThreadCreated, 1));
    policy.OnMessage(Msg(MsgType::kThreadCreated, 2));
    EXPECT_EQ(policy.RunQueueDepth(), 2u);
}

TEST(VmPolicy, RespectsPinning)
{
    VmPolicy policy(5'000'000);
    policy.PinVcpu(1, 0);
    policy.PinVcpu(2, 1);
    policy.OnMessage(Msg(MsgType::kThreadCreated, 1));
    policy.OnMessage(Msg(MsgType::kThreadCreated, 2));

    auto d0 = policy.PickNext(0, sim::TimeNs{0});
    ASSERT_TRUE(d0.has_value());
    EXPECT_EQ(d0->tid, 1);
    EXPECT_FALSE(policy.PickNext(0, sim::TimeNs{0}).has_value())
        << "vCPU 2 is pinned elsewhere";
    EXPECT_EQ(policy.PickNext(1, sim::TimeNs{0})->tid, 2);
}

TEST(VmPolicy, QuantumPreemptionOnlyWithLocalWaiter)
{
    VmPolicy policy(5'000'000);
    policy.PinVcpu(1, 0);
    policy.PinVcpu(2, 0);
    policy.OnMessage(Msg(MsgType::kThreadCreated, 1));
    ASSERT_TRUE(policy.PickNext(0, sim::TimeNs{0}).has_value());
    EXPECT_FALSE(policy.ShouldPreempt(0, 1, 6'000'000))
        << "no waiter on this core";
    policy.OnMessage(Msg(MsgType::kThreadCreated, 2));
    EXPECT_FALSE(policy.ShouldPreempt(0, 1, 4'000'000))
        << "inside quantum";
    EXPECT_TRUE(policy.ShouldPreempt(0, 1, 6'000'000));
}

TEST(VmPolicy, DecisionsCarryTheQuantum)
{
    VmPolicy policy(5'000'000);
    policy.PinVcpu(1, 0);
    policy.OnMessage(Msg(MsgType::kThreadCreated, 1));
    auto d = policy.PickNext(0, sim::TimeNs{0});
    ASSERT_TRUE(d.has_value());
    EXPECT_EQ(d->slice_ns, 5'000'000u);
}

// Property sweep: for any interleaving of create/block/wake messages,
// a policy never returns a thread that is blocked or dead, and depth
// equals the number of runnable-but-unpicked threads.
class PolicyInvariantTest : public ::testing::TestWithParam<int> {};

TEST_P(PolicyInvariantTest, NeverSchedulesNonRunnableThreads)
{
    const int seed = GetParam();
    sim::Rng rng(static_cast<std::uint64_t>(seed));
    ShinjukuPolicy policy(30'000);

    enum class S { kQueuedOrRunning, kBlocked, kDead };
    std::map<Tid, S> state;
    std::set<Tid> pickable;  // runnable and in the queue

    for (int step = 0; step < 2000; ++step) {
        const int action = static_cast<int>(rng.NextBounded(5));
        if (action == 0 || state.empty()) {
            const Tid tid = static_cast<Tid>(state.size() + 1);
            state[tid] = S::kQueuedOrRunning;
            pickable.insert(tid);
            policy.OnMessage(Msg(MsgType::kThreadCreated, tid));
        } else {
            // Pick a random existing thread.
            auto it = state.begin();
            std::advance(it, static_cast<long>(
                                 rng.NextBounded(state.size())));
            const Tid tid = it->first;
            switch (action) {
              case 1:  // pick for a core
                if (!pickable.empty()) {
                    auto d = policy.PickNext(0, sim::TimeNs{0});
                    if (d) {
                        EXPECT_TRUE(pickable.count(d->tid))
                            << "picked non-runnable tid " << d->tid;
                        pickable.erase(d->tid);
                    }
                }
                break;
              case 2:  // block (only threads not in the queue can block)
                if (it->second == S::kQueuedOrRunning &&
                    !pickable.count(tid)) {
                    it->second = S::kBlocked;
                    policy.OnMessage(Msg(MsgType::kThreadBlocked, tid));
                }
                break;
              case 3:  // wake
                if (it->second == S::kBlocked) {
                    it->second = S::kQueuedOrRunning;
                    pickable.insert(tid);
                    policy.OnMessage(Msg(MsgType::kThreadWakeup, tid));
                }
                break;
              case 4:  // die (when not queued)
                if (!pickable.count(tid) && it->second != S::kDead) {
                    it->second = S::kDead;
                    policy.OnMessage(Msg(MsgType::kThreadDead, tid));
                }
                break;
            }
        }
        EXPECT_EQ(policy.RunQueueDepth(), pickable.size());
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PolicyInvariantTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace wave::sched
