/**
 * @file
 * Tests for the memory-policy interface and the LRU-CLOCK baseline:
 * scan scheduling, cold-sweep classification, reheating, agent
 * interoperability through MemPolicy, and the SOL-vs-CLOCK scan-volume
 * trade-off that motivates SOL (§4.2).
 */
#include <gtest/gtest.h>

#include "machine/machine.h"
#include "memmgr/clock_policy.h"
#include "memmgr/swap_device.h"
#include "sim/simulator.h"
#include "sol/agent.h"

namespace wave::memmgr {
namespace {

using sim::Simulator;
using sim::Task;

TEST(ClockPolicy, AllBatchesDueAtStart)
{
    ClockPolicy policy(ClockConfig{}, 8);
    for (std::size_t b = 0; b < 8; ++b) {
        EXPECT_TRUE(policy.Due(b, sim::TimeNs{0}));
    }
}

TEST(ClockPolicy, UniformReschedule)
{
    ClockConfig config;
    ClockPolicy policy(config, 2);
    EXPECT_TRUE(policy.ScanBatch(0, 5, sim::TimeNs{0}));
    EXPECT_FALSE(policy.Due(0, sim::TimeNs{config.scan_period_ns - 1}));
    EXPECT_TRUE(policy.Due(0, sim::TimeNs{config.scan_period_ns}));
    EXPECT_FALSE(policy.ScanBatch(0, 5, sim::TimeNs{100}))
        << "not due yet: scan is a no-op";
}

TEST(ClockPolicy, ColdAfterConsecutiveIdleSweeps)
{
    ClockConfig config;
    config.cold_sweeps = 3;
    ClockPolicy policy(config, 1);
    sim::TimeNs now{};
    for (int sweep = 0; sweep < 3; ++sweep) {
        EXPECT_TRUE(policy.ScanBatch(0, 0, now));
        now += config.scan_period_ns;
    }
    EXPECT_EQ(policy.IdleSweeps(0), 3);
    auto plan = policy.EpochPlan();
    ASSERT_EQ(plan.size(), 1u);
    EXPECT_EQ(plan[0].second, Tier::kSlow);
}

TEST(ClockPolicy, AnyTouchResetsTheSweepCounter)
{
    ClockConfig config;
    config.cold_sweeps = 3;
    ClockPolicy policy(config, 1);
    sim::TimeNs now{};
    policy.ScanBatch(0, 0, now);
    now += config.scan_period_ns;
    policy.ScanBatch(0, 0, now);
    now += config.scan_period_ns;
    policy.ScanBatch(0, 1, now);  // touched: reset
    EXPECT_EQ(policy.IdleSweeps(0), 0);
    EXPECT_TRUE(policy.EpochPlan().empty());
}

TEST(ClockPolicy, ReheatedBatchReturnsToFast)
{
    ClockConfig config;
    config.cold_sweeps = 2;
    ClockPolicy policy(config, 1);
    sim::TimeNs now{};
    for (int sweep = 0; sweep < 2; ++sweep) {
        policy.ScanBatch(0, 0, now);
        now += config.scan_period_ns;
    }
    ASSERT_EQ(policy.EpochPlan().size(), 1u);  // cold
    policy.ScanBatch(0, 10, now);
    auto plan = policy.EpochPlan();
    ASSERT_EQ(plan.size(), 1u);
    EXPECT_EQ(plan[0].second, Tier::kFast);
}

TEST(ClockPolicy, AgentDrivesItThroughMemPolicy)
{
    Simulator sim;
    machine::Machine machine(sim);
    AddressSpace space(64 * 128);

    sol::SolDeployment deployment;
    deployment.cpus.push_back(&machine.HostCpu(0));
    sol::SolAgent agent(
        sim, space, deployment,
        std::make_unique<ClockPolicy>(ClockConfig{}, 128));

    sim::DurationNs duration = 0;
    sim.Spawn([](sol::SolAgent& a, sim::DurationNs& d) -> Task<> {
        d = co_await a.RunIteration();
    }(agent, duration));
    sim.Run();
    EXPECT_EQ(agent.Stats().batches_scanned, 128u);
    EXPECT_GT(duration, 0u);
}

TEST(ClockPolicy, ScansEveryBatchEveryPeriodUnlikeSol)
{
    // The §4.2 trade-off: over several periods with a cold address
    // space, CLOCK keeps rescanning everything while SOL's Thompson
    // sampling stretches cold batches' periods.
    const std::size_t batches = 512;
    const std::size_t pages = 64 * batches;

    auto run = [&](std::unique_ptr<MemPolicy> policy) {
        Simulator sim;
        machine::Machine machine(sim);
        AddressSpace space(pages);
        sol::SolDeployment deployment;
        deployment.cpus.push_back(&machine.HostCpu(0));
        sol::SolAgent agent(sim, space, deployment, std::move(policy));
        sim.Spawn([](sol::SolAgent& a) -> Task<> {
            co_await a.RunUntil(sim::TimeNs{20'000'000'000ull});  // 20 s
        }(agent));
        sim.RunUntil(sim::TimeNs{20'000'000'000ull});
        return agent.Stats().batches_scanned;
    };

    ClockConfig clock_config;
    clock_config.scan_period_ns = 600'000'000;  // match SOL's fastest
    const auto clock_scans =
        run(std::make_unique<ClockPolicy>(clock_config, batches));
    const auto sol_scans =
        run(std::make_unique<sol::SolPolicy>(sol::SolConfig{}, batches));
    EXPECT_GT(clock_scans, 2 * sol_scans)
        << "SOL must scan cold memory far less than CLOCK";
}

}  // namespace
}  // namespace wave::memmgr

namespace wave::memmgr {
namespace {

using sim::Simulator;
using sim::Task;

TEST(SwapDevice, SinglePageFaultCostsLatencyPlusTransfer)
{
    Simulator sim;
    SwapConfig config;
    SwapDevice device(sim, config);
    sim.Spawn([](Simulator& s, SwapDevice& d, const SwapConfig& c) -> Task<> {
        const sim::TimeNs t0 = s.Now();
        co_await d.FaultIn();
        const auto expected =
            c.op_latency_ns +
            sim::DurationNs::FromDouble(kPageSize / c.bytes_per_ns);
        EXPECT_EQ(s.Now() - t0, expected);
    }(sim, device, config));
    sim.Run();
    EXPECT_EQ(device.Operations(), 1u);
    EXPECT_EQ(device.PagesMoved(), 1u);
}

TEST(SwapDevice, ChannelsServeFaultsInParallel)
{
    Simulator sim;
    SwapConfig config;
    config.channels = 4;
    SwapDevice device(sim, config);
    for (int i = 0; i < 4; ++i) {
        sim.Spawn([](SwapDevice& d) -> Task<> {
            co_await d.FaultIn();
        }(device));
    }
    sim.Run();
    const auto single =
        config.op_latency_ns +
        sim::DurationNs::FromDouble(kPageSize / config.bytes_per_ns);
    EXPECT_EQ(sim.Now(), sim::TimeNs{single})
        << "4 faults on 4 channels overlap fully";
}

TEST(SwapDevice, FaultStormQueuesBeyondChannelCount)
{
    Simulator sim;
    SwapConfig config;
    config.channels = 2;
    SwapDevice device(sim, config);
    for (int i = 0; i < 8; ++i) {
        sim.Spawn([](SwapDevice& d) -> Task<> {
            co_await d.FaultIn();
        }(device));
    }
    sim.Run();
    // 8 ops, 2 channels -> 4 serialized rounds.
    const auto single =
        config.op_latency_ns +
        sim::DurationNs::FromDouble(kPageSize / config.bytes_per_ns);
    EXPECT_EQ(sim.Now(), sim::TimeNs{4 * single});
    // Queueing is visible in the recorded tail.
    EXPECT_GT(device.Latency().Percentile(0.99),
              device.Latency().Percentile(0.01));
}

TEST(SwapDevice, InjectedDelaySpikeInflatesOnlyTheWindow)
{
    // A device GC pause (modelled as a swap-delay fault window) must
    // slow exactly the operations whose service falls inside it.
    Simulator sim;
    SwapConfig config;
    config.channels = 1;
    SwapDevice device(sim, config);
    sim::inject::FaultInjector injector(sim);
    device.SetFaultInjector(&injector);

    const sim::DurationNs single =
        config.op_latency_ns +
        sim::DurationNs::FromDouble(kPageSize / config.bytes_per_ns);
    const sim::DurationNs spike = 50'000;
    // Window covers the first operation only.
    injector.Arm({{sim::inject::FaultKind::kSwapDelay, /*at=*/sim::TimeNs{0},
                   /*duration=*/single, /*param=*/spike.ns()}});

    sim.Spawn([](Simulator& s, SwapDevice& d, sim::DurationNs base,
                 sim::DurationNs extra) -> Task<> {
        const sim::TimeNs t0 = s.Now();
        co_await d.FaultIn();  // starts at 0: inside the window
        EXPECT_EQ(s.Now() - t0, base + extra);
        const sim::TimeNs t1 = s.Now();
        co_await d.FaultIn();  // starts after the window: clean
        EXPECT_EQ(s.Now() - t1, base);
    }(sim, device, single, spike));
    sim.Run();
    EXPECT_EQ(injector.Stats().swap_delays, 1u);
}

TEST(SwapDevice, SpikeBehindSharedChannelDelaysEveryWaiter)
{
    // The spike applies while the channel is held, so queued waiters
    // behind the slowed operation all see the inflated completion.
    Simulator sim;
    SwapConfig config;
    config.channels = 1;
    SwapDevice device(sim, config);
    sim::inject::FaultInjector injector(sim);
    device.SetFaultInjector(&injector);

    const sim::DurationNs single =
        config.op_latency_ns +
        sim::DurationNs::FromDouble(kPageSize / config.bytes_per_ns);
    injector.Arm({{sim::inject::FaultKind::kSwapDelay, /*at=*/sim::TimeNs{0},
                   /*duration=*/1, /*param=*/100'000}});

    for (int i = 0; i < 3; ++i) {
        sim.Spawn([](SwapDevice& d) -> Task<> {
            co_await d.FaultIn();
        }(device));
    }
    sim.Run();
    // First op pays the spike; ops 2 and 3 run clean but queued behind
    // it, so completion is spike + 3 * single.
    EXPECT_EQ(sim.Now(), sim::TimeNs{100'000 + 3 * single});
    EXPECT_EQ(injector.Stats().swap_delays, 1u);
}

TEST(SwapDevice, BulkTransferAmortizesLatency)
{
    Simulator sim;
    SwapDevice device(sim);
    sim.Spawn([](Simulator& s, SwapDevice& d) -> Task<> {
        const sim::TimeNs t0 = s.Now();
        co_await d.Transfer(64);  // one 256 KiB batch
        const auto batched = s.Now() - t0;
        // 64 single-page faults on one channel would cost ~64x latency;
        // the batch pays it once.
        EXPECT_LT(batched, 64 * 8'000u);
    }(sim, device));
    sim.Run();
    EXPECT_EQ(device.PagesMoved(), 64u);
}

}  // namespace
}  // namespace wave::memmgr
