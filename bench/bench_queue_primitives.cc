/**
 * @file
 * Ablation bench: the §5.3 communication design choices, measured on
 * the queue primitives directly.
 *
 * Part 1 (simulated time): per-message cost of the host->NIC send path
 * under each PTE strategy, WT read caching + prefetch on the receive
 * path, sync vs async DMA (iPipe's 2-7x insight), and DMA batching.
 *
 * Part 2 (wall clock, google-benchmark): the ring-buffer layout and
 * simulation engine themselves, so regressions in the implementation
 * show up independently of the modelled latencies.
 */
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstring>

#include "bench/bench_json.h"
#include "bench/bench_util.h"
#include "channel/dma_queue.h"
#include "stats/histogram.h"
#include "channel/mmio_queue.h"
#include "sim/alloc_guard.h"
#include "sim/simulator.h"
#include "stats/table.h"

namespace {

using namespace wave;
using channel::Bytes;
using channel::QueueConfig;
using sim::Simulator;
using sim::Task;
using sim::DurationNs;
using sim::TimeNs;

Bytes
Msg(std::uint64_t v)
{
    Bytes b(48);
    std::memcpy(b.data(), &v, sizeof(v));
    return b;
}

/** Simulated per-message send cost for a PTE strategy, batch of 16. */
DurationNs
MmioSendCost(pcie::PteType write_type)
{
    Simulator sim;
    pcie::NicDram dram(sim, pcie::PcieConfig{}, 1 << 20);
    channel::MmioQueue queue(dram, 0,
                             QueueConfig{.capacity = 64,
                                         .payload_size = 48});
    channel::HostProducer producer(queue, write_type,
                                   pcie::PteType::kWriteThrough);
    DurationNs cost{};
    sim.Spawn([](Simulator& s, channel::HostProducer& p,
                 DurationNs& out) -> Task<> {
        std::vector<Bytes> batch;
        for (std::uint64_t i = 0; i < 16; ++i) batch.push_back(Msg(i));
        const TimeNs t0 = s.Now();
        co_await p.Send(batch);
        out = (s.Now() - t0) / 16;
    }(sim, producer, cost));
    sim.Run();
    return cost;
}

/** Simulated receive cost with/without WT caching and prefetch. */
DurationNs
MmioReceiveCost(bool write_through, bool prefetch)
{
    Simulator sim;
    pcie::NicDram dram(sim, pcie::PcieConfig{}, 1 << 20);
    channel::MmioQueue queue(dram, 0,
                             QueueConfig{.capacity = 64,
                                         .payload_size = 48});
    channel::NicProducer producer(queue, pcie::PteType::kWriteBack);
    channel::HostConsumer consumer(
        queue,
        write_through ? pcie::PteType::kWriteThrough
                      : pcie::PteType::kUncacheable,
        pcie::PteType::kWriteCombining);
    DurationNs cost{};
    sim.Spawn([](Simulator& s, channel::NicProducer& p,
                 channel::HostConsumer& c, bool pf, DurationNs& out) -> Task<> {
        co_await p.Send(Msg(7));
        if (pf) {
            co_await c.PrefetchNext();
            co_await s.Delay(1'000);  // overlapped kernel work
        }
        const TimeNs t0 = s.Now();
        auto got = co_await c.Poll(/*flush_first=*/!pf);
        out = s.Now() - t0;
        benchmark::DoNotOptimize(got);
    }(sim, producer, consumer, prefetch, cost));
    sim.Run();
    return cost;
}

/** Simulated per-message DMA cost, batched or singly, sync or async. */
DurationNs
DmaSendCost(std::size_t batch_size, bool sync)
{
    Simulator sim;
    pcie::DmaEngine dma(sim, pcie::PcieConfig{});
    channel::DmaQueue queue(sim, dma, pcie::DmaInitiator::kNic,
                            QueueConfig{.capacity = 256,
                                        .payload_size = 48,
                                        .sync_interval = 64});
    DurationNs cost{};
    sim.Spawn([](Simulator& s, channel::DmaQueue& q, std::size_t n,
                 bool sy, DurationNs& out) -> Task<> {
        const TimeNs t0 = s.Now();
        std::size_t sent = 0;
        while (sent < 128) {
            std::vector<Bytes> batch;
            for (std::size_t i = 0; i < n; ++i) batch.push_back(Msg(i));
            sent += co_await q.Send(batch, sy);
        }
        out = (s.Now() - t0) / 128;
    }(sim, queue, batch_size, sync, cost));
    sim.Run();
    return cost;
}

void
PrintDesignChoiceTables()
{
    bench::Banner("EXP-ABL-QUEUE",
                  "§5.3 ablation: queue transport design choices");

    stats::Table send({"host->NIC send path (per msg, batch=16)",
                       "cost"});
    send.AddRow({"uncacheable stores (baseline)",
                 bench::FmtNs(MmioSendCost(pcie::PteType::kUncacheable).ToDouble())});
    send.AddRow({"write-combining + one sfence (§5.3.1)",
                 bench::FmtNs(MmioSendCost(pcie::PteType::kWriteCombining).ToDouble())});
    send.Print();

    stats::PrintHeading("NIC->host decision read");
    stats::Table recv({"receive path", "cost"});
    recv.AddRow({"uncacheable reads (baseline)",
                 bench::FmtNs(MmioReceiveCost(false, false).ToDouble())});
    recv.AddRow({"write-through line fetch (§5.3.2)",
                 bench::FmtNs(MmioReceiveCost(true, false).ToDouble())});
    recv.AddRow({"write-through + prefetch (§5.4)",
                 bench::FmtNs(MmioReceiveCost(true, true).ToDouble())});
    recv.Print();

    stats::PrintHeading("DMA queue (per msg over 128 msgs)");
    stats::Table dma({"strategy", "cost"});
    dma.AddRow({"sync, single-message transfers",
                bench::FmtNs(DmaSendCost(1, true).ToDouble())});
    dma.AddRow({"async, single-message transfers",
                bench::FmtNs(DmaSendCost(1, false).ToDouble())});
    dma.AddRow({"sync, 64-message batches",
                bench::FmtNs(DmaSendCost(64, true).ToDouble())});
    dma.AddRow({"async, 64-message batches (Floem/iPipe)",
                bench::FmtNs(DmaSendCost(64, false).ToDouble())});
    dma.Print();

    stats::PrintHeading("NUMA placement (1 MiB DMA, §5.1)");
    {
        Simulator s;
        pcie::DmaEngine engine(s, pcie::PcieConfig{});
        const std::size_t mib = 1 << 20;
        const auto local_ns = engine.TransferTime(mib);
        engine.SetNumaLocal(false);
        const auto remote_ns = engine.TransferTime(mib);
        std::printf("recipient-local buffers: %s   remote-node: %s "
                    "(paper: 10-20%% throughput difference)\n",
                    bench::FmtNs(local_ns.ToDouble()).c_str(),
                    bench::FmtNs(remote_ns.ToDouble()).c_str());
    }
    std::printf("\n");
}

// --- wall-clock microbenchmarks of the implementation itself ---

void
BM_SimulatorEventLoop(benchmark::State& state)
{
    for (auto _ : state) {
        Simulator sim;
        for (int i = 0; i < 1000; ++i) {
            sim.Schedule(static_cast<sim::DurationNs>(i),
                         [] { benchmark::ClobberMemory(); });
        }
        sim.Run();
    }
    state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_SimulatorEventLoop);

void
BM_MmioQueueRoundTrip(benchmark::State& state)
{
    for (auto _ : state) {
        Simulator sim;
        pcie::NicDram dram(sim, pcie::PcieConfig{}, 1 << 20);
        channel::MmioQueue queue(dram, 0,
                                 QueueConfig{.capacity = 64,
                                             .payload_size = 48});
        channel::HostProducer producer(queue,
                                       pcie::PteType::kWriteCombining,
                                       pcie::PteType::kWriteThrough);
        channel::NicConsumer consumer(queue, pcie::PteType::kWriteBack);
        sim.Spawn([](Simulator& s, channel::HostProducer& p,
                     channel::NicConsumer& c) -> Task<> {
            for (int round = 0; round < 32; ++round) {
                std::vector<Bytes> batch;
                batch.push_back(Msg(static_cast<std::uint64_t>(round)));
                co_await p.Send(batch);
                co_await s.Delay(1'000);
                auto got = co_await c.Poll();
                benchmark::DoNotOptimize(got);
            }
        }(sim, producer, consumer));
        sim.Run();
    }
    state.SetItemsProcessed(state.iterations() * 32);
}
BENCHMARK(BM_MmioQueueRoundTrip);

void
BM_HistogramRecord(benchmark::State& state)
{
    stats::Histogram histogram;
    std::uint64_t v = 1;
    for (auto _ : state) {
        histogram.Record(v);
        v = v * 2862933555777941757ull + 3037000493ull;
        v >>= (v & 15);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HistogramRecord);

// --- BENCH_simcore.json: the machine-readable perf trajectory ---

/**
 * Wall-clock event-loop throughput and steady-state allocation rate.
 *
 * One warmup round levels the event-queue capacity and frame pool off;
 * the measured rounds then run the loop exactly as a long simulation
 * would. AllocGuard counts global operator new calls in the measured
 * region — the dynamic check behind W101's "allocation-free steady
 * state" claim.
 */
void
MeasureEventLoop(bench::BenchJson& json, bool quick)
{
    // Several repetitions, best one reported: the first repetitions
    // also warm the CPU governor out of its low-frequency state, and
    // peak throughput is the stable estimator a regression gate needs
    // (the noise is all one-sided). The allocation count covers every
    // repetition — steady state must hold throughout.
    constexpr int kEventsPerRound = 1000;
    const int rounds = quick ? 200 : 1000;
    const int reps = quick ? 5 : 3;

    Simulator sim;
    std::uint64_t sink = 0;
    const auto run_round = [&] {
        for (int i = 0; i < kEventsPerRound; ++i) {
            sim.Schedule(static_cast<DurationNs>(i % 64),
                         [&sink] { ++sink; });
        }
        sim.Run();
    };
    run_round();  // warmup: event-queue capacity reaches steady state

    sim::AllocGuard guard;
    double best_rate = 0.0;
    std::uint64_t events_total = 0;
    for (int rep = 0; rep < reps; ++rep) {
        const std::uint64_t events_before = sim.EventsExecuted();
        const auto t0 = std::chrono::steady_clock::now();
        for (int r = 0; r < rounds; ++r) {
            run_round();
        }
        const auto t1 = std::chrono::steady_clock::now();
        const std::uint64_t events =
            sim.EventsExecuted() - events_before;
        events_total += events;
        const double secs =
            std::chrono::duration<double>(t1 - t0).count();
        best_rate = std::max(best_rate,
                             static_cast<double>(events) / secs);
    }
    benchmark::DoNotOptimize(sink);

    json.Add("events_per_sec", best_rate, "1/s");
    json.Add("allocs_per_event",
             static_cast<double>(guard.Allocations()) /
                 static_cast<double>(events_total),
             "1/event");
}

/**
 * Wall-clock cost of simulating one second of the MMIO round-trip
 * workload — the "how long does a simulated second take to compute"
 * number that bounds every figure reproduction's runtime.
 */
void
MeasureSimTimeRatio(bench::BenchJson& json, bool quick)
{
    // Best of several repetitions, as in MeasureEventLoop.
    const int rounds = quick ? 5'000 : 20'000;
    const int reps = quick ? 4 : 3;

    double best_rate = 0.0;
    double best_ratio = 0.0;
    for (int rep = 0; rep < reps; ++rep) {
        Simulator sim;
        pcie::NicDram dram(sim, pcie::PcieConfig{}, 1 << 20);
        channel::MmioQueue queue(dram, 0,
                                 QueueConfig{.capacity = 64,
                                             .payload_size = 48});
        channel::HostProducer producer(queue,
                                       pcie::PteType::kWriteCombining,
                                       pcie::PteType::kWriteThrough);
        channel::NicConsumer consumer(queue, pcie::PteType::kWriteBack);
        sim.Spawn([](Simulator& s, channel::HostProducer& p,
                     channel::NicConsumer& c, int n) -> Task<> {
            std::vector<Bytes> batch;
            batch.push_back(Msg(7));
            Bytes payload;
            for (int round = 0; round < n; ++round) {
                co_await p.Send(batch);
                co_await s.Delay(1'000);
                const bool got = co_await c.PollInto(payload);
                benchmark::DoNotOptimize(got);
            }
        }(sim, producer, consumer, rounds));

        const auto t0 = std::chrono::steady_clock::now();
        sim.Run();
        const auto t1 = std::chrono::steady_clock::now();
        const double wall_ns =
            std::chrono::duration<double, std::nano>(t1 - t0).count();
        const double sim_secs = sim.Now().ns() / 1e9;
        best_rate = std::max(
            best_rate, static_cast<double>(sim.EventsExecuted()) /
                           (wall_ns / 1e9));
        best_ratio = best_ratio == 0.0
                         ? wall_ns / sim_secs
                         : std::min(best_ratio, wall_ns / sim_secs);
    }

    json.Add("wall_ns_per_sim_sec", best_ratio, "ns/sim-s");
    json.Add("roundtrip_events_per_sec", best_rate, "1/s");
}

int
RunJsonMode(const bench::JsonCliArgs& args)
{
    bench::BenchJson json("simcore");
    MeasureEventLoop(json, args.quick);
    MeasureSimTimeRatio(json, args.quick);
    return json.WriteTo(args.json_path) ? 0 : 1;
}

}  // namespace

int
main(int argc, char** argv)
{
    const auto json_args = bench::JsonCliArgs::Parse(argc, argv);
    if (!json_args.json_path.empty()) {
        return RunJsonMode(json_args);
    }
    PrintDesignChoiceTables();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
