/**
 * @file
 * EXP-UPI: reproduces §7.3.3 — faster (coherent) interconnects benefit
 * Wave.
 *
 * The paper emulates a UPI-attached SmartNIC with the host's second
 * socket, sweeping its frequency (3.0 / 2.5 / 2.0 GHz vs the host's
 * 3.5 GHz) and re-implementing the Wave optimizations over coherent
 * memory. Offload and on-host use the same number of RocksDB cores
 * (apples-to-apples). Paper: slowdowns at saturation of 1.3% (3 GHz),
 * 2.5% (2.5 GHz), 3.5% (2 GHz); UPI at 3 GHz beats the real
 * PCIe-attached SmartNIC by ~0.9%.
 */
#include "bench/bench_util.h"
#include "rpc/rpc_experiment.h"
#include "stats/table.h"

namespace {

using namespace wave;
using rpc::RpcExperimentConfig;
using rpc::RpcScenario;

/**
 * The §7.3.3 slowdowns are 1-3%, below what a practical saturation
 * sweep resolves on this simulator, so the bench compares the
 * deployments at one fixed near-knee load and reports achieved
 * throughput plus the GET p99 — the latency ordering carries the
 * paper's fine-grained signal.
 */
rpc::RpcExperimentResult
AtFixedLoad(RpcScenario scenario, const pcie::PcieConfig& pcie,
            double nic_speed)
{
    RpcExperimentConfig cfg;
    cfg.scenario = scenario;
    cfg.rocksdb_cores = 15;  // same core count: apples-to-apples
    cfg.pcie = pcie;
    cfg.nic_speed = nic_speed;
    cfg.offered_rps = 185'000;  // just below the worker-capacity knee
    cfg.warmup_ns = 50'000'000;
    cfg.measure_ns = 250'000'000;
    return rpc::RunRpcExperiment(cfg);
}

}  // namespace

int
main()
{
    bench::Banner("EXP-UPI",
                  "§7.3.3: UPI-emulated SmartNIC frequency sweep");

    // On-host reference (scheduler + RPC stack + RocksDB in one socket).
    const auto onhost =
        AtFixedLoad(RpcScenario::kOnHostAll, pcie::PcieConfig{}, 0.0);

    // The emulated SmartNIC is another x86 socket: per-cycle parity
    // with the host, so speed = frequency ratio.
    struct Point {
        const char* name;
        double ghz;
        const char* paper;
    };
    const Point points[] = {
        {"UPI offload @ 3.0 GHz", 3.0, "-1.3% at saturation"},
        {"UPI offload @ 2.5 GHz", 2.5, "-2.5% at saturation"},
        {"UPI offload @ 2.0 GHz", 2.0, "-3.5% at saturation"},
    };

    stats::Table table({"configuration", "achieved @185k", "GET p99",
                        "paper"});
    auto row = [&](const char* name,
                   const rpc::RpcExperimentResult& r, const char* paper) {
        table.AddRow({name, bench::FmtTput(r.achieved_rps),
                      bench::FmtNs(r.get_p99.ToDouble()),
                      paper});
    };
    row("On-Host (same socket, 3.5 GHz)", onhost, "baseline");

    sim::DurationNs upi_3ghz_p99 = 0;
    for (const Point& point : points) {
        const auto r = AtFixedLoad(RpcScenario::kOffloadAll,
                                   pcie::PcieConfig::Upi(),
                                   point.ghz / 3.5);
        if (point.ghz == 3.0) upi_3ghz_p99 = r.get_p99;
        row(point.name, r, point.paper);
    }

    // The real PCIe SmartNIC for the cross-interconnect comparison.
    const auto pcie_nic =
        AtFixedLoad(RpcScenario::kOffloadAll, pcie::PcieConfig{}, 0.61);
    row("PCIe SmartNIC (real ARM cores)", pcie_nic,
        "UPI@3GHz ~0.9% better");
    table.Print();

    std::printf(
        "\nExpected ordering: on-host best; UPI degrades as the emulated\n"
        "socket slows; the coherent UPI@3GHz beats the PCIe SmartNIC\n"
        "(paper: +0.9%% at saturation). UPI@3GHz p99 %s vs PCIe p99 %s.\n",
        bench::FmtNs(upi_3ghz_p99.ToDouble()).c_str(),
        bench::FmtNs(pcie_nic.get_p99.ToDouble()).c_str());
    return 0;
}
