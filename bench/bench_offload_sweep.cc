/**
 * @file
 * EXP-OFF: the NIC-core contention sweep (ROADMAP item 3).
 *
 * Wave's scheduling agent occupies one SmartNIC core; the other NIC
 * cores are exactly where operators want to run datapath offloads
 * (firewall, L3 LB, crypto, telemetry — the offload/ stage catalog).
 * This bench sweeps the offered datapath load from 0% to 100% of the
 * NIC's aggregate stage-processing capacity and reports what the
 * contention does to the agent's reaction time (iteration tail), to
 * its policy quality (KV GET p99 on the host), and to the datapath
 * itself — the deployment question the paper assumes away by giving
 * the agent a dedicated core.
 *
 * JSON mode (--json <path> [--quick]) emits a wave-bench-v1 report and
 * cross-checks determinism first: the same sweep point run twice must
 * produce bit-identical event-stream fingerprints, or the report is
 * refused. The gated metrics are simulated (deterministic) rates, so
 * the 25% bench_gate tolerance only ever trips on a real model change.
 */
#include "bench/bench_json.h"
#include "bench/bench_util.h"
#include "offload/sweep.h"
#include "stats/table.h"

namespace {

using namespace wave;

const double kShares[] = {0.0, 0.25, 0.5, 0.75, 1.0};

offload::OffloadSweepConfig
Scenario(double share, offload::Placement placement, bool quick)
{
    offload::OffloadSweepConfig cfg;
    cfg.core_share = share;
    cfg.placement = placement;
    if (quick) {
        cfg.worker_cores = 4;
        cfg.num_workers = 16;
        cfg.nic_cores = 4;
        cfg.full_rate_pps = 400'000;
        cfg.flows = 64;
        cfg.offered_rps = 100'000;
        cfg.warmup_ns = 5'000'000;
        cfg.measure_ns = 20'000'000;
        cfg.drain_ns = 2'000'000;
    }
    return cfg;
}

void
AddRow(stats::Table& table, const char* label,
       const offload::OffloadSweepResult& r)
{
    table.AddRow({label,
                  bench::FmtNs(static_cast<double>(r.agent_iter_p50)),
                  bench::FmtNs(static_cast<double>(r.agent_iter_p99)),
                  bench::FmtNs(static_cast<double>(r.agent_iter_p999)),
                  bench::FmtNs(static_cast<double>(r.get_p99)),
                  bench::FmtTput(r.achieved_pps),
                  bench::FmtNs(static_cast<double>(r.packet_p99)),
                  stats::Table::Fmt("%.0f%%", r.agent_core_busy * 100),
                  stats::Table::Fmt("%.0f%%", r.datapath_core_busy * 100)});
}

int
RunJsonMode(const bench::JsonCliArgs& args)
{
    bench::BenchJson json("offload_sweep");

    // Determinism cross-check: the mid-sweep point run twice must be
    // bit-identical. A fingerprint mismatch means some part of the
    // deployment picked up nondeterminism (unkeyed ties, address-keyed
    // ordering, a stray global RNG) — refuse to report numbers from it.
    const offload::OffloadSweepConfig mid =
        Scenario(0.5, offload::Placement::kRunToCompletion, args.quick);
    const offload::OffloadSweepResult once = RunOffloadSweep(mid);
    const offload::OffloadSweepResult twice = RunOffloadSweep(mid);
    if (once.event_hash != twice.event_hash) {
        std::fprintf(stderr,
                     "bench_offload_sweep: FINGERPRINT MISMATCH "
                     "(%016llx vs %016llx) — sweep is nondeterministic\n",
                     static_cast<unsigned long long>(once.event_hash),
                     static_cast<unsigned long long>(twice.event_hash));
        return 1;
    }

    for (const double share : {0.0, 0.5, 1.0}) {
        const offload::OffloadSweepResult r =
            share == 0.5
                ? once
                : RunOffloadSweep(Scenario(
                      share, offload::Placement::kRunToCompletion,
                      args.quick));
        const std::string key =
            stats::Table::Fmt("share%d", static_cast<int>(share * 100));
        json.Add(key + "_agent_iter_p99_ns",
                 static_cast<double>(r.agent_iter_p99), "ns");
        json.Add(key + "_kv_get_p99_ns", static_cast<double>(r.get_p99),
                 "ns");
        json.Add(key + "_kv_per_sec", r.achieved_rps, "1/s");
        if (share > 0) {
            json.Add(key + "_packets_per_sec", r.achieved_pps, "1/s");
            json.Add(key + "_datapath_core_busy", r.datapath_core_busy,
                     "frac");
        }
        json.Add(key + "_agent_core_busy", r.agent_core_busy, "frac");
    }
    return json.WriteTo(args.json_path) ? 0 : 1;
}

}  // namespace

int
main(int argc, char** argv)
{
    const auto json_args = bench::JsonCliArgs::Parse(argc, argv);
    if (!json_args.json_path.empty()) {
        return RunJsonMode(json_args);
    }

    bench::Banner("EXP-OFF",
                  "offload datapath load vs agent reaction time "
                  "(0-100% of NIC core capacity)");

    const std::vector<std::string> cols = {
        "offload load", "agent p50", "agent p99", "agent p99.9",
        "KV GET p99",   "pkts/s",    "pkt p99",   "agent core",
        "dp cores"};

    stats::Table rtc(cols);
    for (const double share : kShares) {
        const auto r = RunOffloadSweep(Scenario(
            share, offload::Placement::kRunToCompletion, false));
        AddRow(rtc, stats::Table::Fmt("%.0f%%", share * 100).c_str(), r);
    }
    stats::PrintHeading(
        "Run-to-completion placement (every datapath core runs the "
        "full chain; the agent core takes a bounded slice)");
    rtc.Print();

    stats::Table piped(cols);
    for (const double share : kShares) {
        const auto r = RunOffloadSweep(
            Scenario(share, offload::Placement::kPipelined, false));
        AddRow(piped, stats::Table::Fmt("%.0f%%", share * 100).c_str(),
               r);
    }
    stats::PrintHeading(
        "Pipelined placement (one contiguous chain segment per "
        "datapath core)");
    piped.Print();

    std::printf(
        "\nThe isolation baseline is the 0%% row: the agent owns its "
        "core outright.\nCompare the agent p99/p99.9 columns downward "
        "— that is the reaction-time\ncost of colocating real datapath "
        "work with the resource-management agent.\n");
    return 0;
}
