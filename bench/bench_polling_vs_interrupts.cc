/**
 * @file
 * Ablation bench: interrupt-driven vs polled decision delivery (§5.1's
 * "disabling interrupts" and §4.3's polled RPC queues).
 *
 * With prestaging off, every scheduling decision is reactive: the host
 * either halts and takes an MSI-X (receive cost + end-to-end latency)
 * or spins on the decision queue (each empty poll costs a flush + line
 * fetch over PCIe but wakeups skip the interrupt path). This sweep
 * shows polling trimming the reactive path's latency at the cost of
 * burned polling cycles — and why prestaging (which makes both cheap)
 * is the §5.4 default.
 */
#include "bench/bench_util.h"
#include "stats/table.h"
#include "workload/sched_experiment.h"

int
main()
{
    using namespace wave;
    using workload::Deployment;
    using workload::SchedExperimentConfig;
    bench::Banner("EXP-ABL-IRQ",
                  "decision delivery: MSI-X vs polled queues (Wave-16)");

    stats::Table table({"mode", "offered", "achieved", "GET p50",
                        "GET p99", "ctx-switch p50"});
    for (double rps : {400e3, 700e3, 900e3}) {
        for (int mode = 0; mode < 3; ++mode) {
            SchedExperimentConfig cfg;
            cfg.deployment = Deployment::kWave;
            cfg.worker_cores = 16;
            cfg.num_workers = 64;
            cfg.offered_rps = rps;
            cfg.warmup_ns = 20'000'000;
            cfg.measure_ns = 80'000'000;
            const char* name = nullptr;
            switch (mode) {
              case 0:
                name = "MSI-X, no prestage";
                cfg.prestage = false;
                break;
              case 1:
                name = "polling, no prestage";
                cfg.prestage = false;
                cfg.poll_mode = true;
                break;
              default:
                name = "MSI-X + prestage (default)";
                cfg.prestage = true;
                cfg.prestage_min_depth = 4;
                break;
            }
            const auto r = workload::RunSchedExperiment(cfg);
            table.AddRow(
                {name, bench::FmtTput(rps),
                 bench::FmtTput(r.achieved_rps),
                 bench::FmtNs(r.get_p50.ToDouble()),
                 bench::FmtNs(r.get_p99.ToDouble()),
                 bench::FmtNs(r.ctx_switch_p50.ToDouble())});
        }
    }
    table.Print();
    return 0;
}
