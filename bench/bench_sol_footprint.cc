/**
 * @file
 * EXP-SOLMEM: reproduces the §7.4.2 RocksDB footprint result — SOL
 * shrinks the fast-tier (DRAM) footprint from ~102 GiB to ~21.3 GiB
 * (79% reduction) after 3 epochs, while GETs stay fast (median 12 µs,
 * p99 31 µs).
 *
 * Substitution note (DESIGN.md): the paper drives a real RocksDB; we
 * drive the simulated KV store with a skewed page-access trace whose
 * hot set is ~20% of the address space (RocksDB's hot blocks +
 * indexes). The address space is scaled to 8 GiB so 3 epochs (115 s of
 * simulated time) run quickly; footprint *fractions* are what the
 * experiment checks.
 */
#include <memory>

#include "bench/bench_util.h"
#include "machine/machine.h"
#include "memmgr/swap_device.h"
#include "sim/random.h"
#include "sim/simulator.h"
#include "sol/agent.h"
#include "stats/histogram.h"
#include "stats/table.h"

namespace {

using namespace wave;

constexpr std::size_t kPages = 2'097'152;  // 8 GiB
constexpr double kHotFraction = 0.20;
constexpr sim::DurationNs kGetServiceNs = 10'000;
constexpr sim::DurationNs kSchedOverheadNs = 2'000;

/** GET workload: touches pages with a hot/cold skew, records latency.
 *  Slow-tier touches fault through the queued swap device. */
sim::Task<>
RunGets(sim::Simulator& sim, memmgr::AddressSpace& space,
        memmgr::SwapDevice& swap, stats::Histogram& latency,
        sim::TimeNs until)
{
    sim::Rng rng(1234);
    const auto hot_pages =
        static_cast<std::size_t>(kHotFraction * kPages);
    while (sim.Now() < until) {
        // ~50k GETs/s keeps access bits warm without dominating runtime.
        co_await sim.Delay(sim::DurationNs::FromDouble(
            rng.NextExponential(20'000.0)));
        sim::DurationNs service = kGetServiceNs + kSchedOverheadNs;
        // Each GET touches 8 pages (data blocks + index/filter); 98% of
        // touches hit the hot set, as in a cached RocksDB working set.
        for (int i = 0; i < 8; ++i) {
            const std::size_t page =
                rng.NextBernoulli(0.98)
                    ? rng.NextBounded(hot_pages)
                    : hot_pages + rng.NextBounded(kPages - hot_pages);
            space.Touch(page);
            if (space.TierOf(page) == memmgr::Tier::kSlow) {
                // Major fault: swap the page back in through the device.
                const sim::TimeNs fault_start = sim.Now();
                co_await swap.FaultIn();
                service += sim.Now() - fault_start;
            }
        }
        latency.Record(service.ns());
    }
}

}  // namespace

int
main()
{
    bench::Banner("EXP-SOLMEM",
                  "§7.4.2: SOL shrinks the RocksDB DRAM footprint");

    sim::Simulator sim;
    machine::Machine machine(sim);
    memmgr::AddressSpace space(kPages);

    sol::SolDeployment deployment;
    for (int i = 0; i < 16; ++i) {
        deployment.cpus.push_back(&machine.NicCpu(i));
    }
    pcie::DmaEngine dma(sim, pcie::PcieConfig{});
    deployment.dma = &dma;
    sol::SolAgent agent(sim, space, deployment);

    const sim::DurationNs epoch = agent.Policy().EpochNs();
    const sim::TimeNs end{3 * epoch + epoch / 4};  // past 3 epochs

    memmgr::SwapDevice swap(sim);
    stats::Histogram get_latency;
    sim.Spawn(RunGets(sim, space, swap, get_latency, end));
    sim.Spawn([](sol::SolAgent& a, sim::TimeNs until) -> sim::Task<> {
        co_await a.RunUntil(until);
    }(agent, end));

    const double start_gib =
        static_cast<double>(space.FastTierBytes()) / (1ull << 30);

    stats::Table trajectory({"epoch", "fast tier (GiB)", "fraction"});
    trajectory.AddRow({"start", stats::Table::Fmt("%.1f", start_gib),
                       "100%"});
    for (int e = 1; e <= 3; ++e) {
        sim.RunUntil(sim::TimeNs{e * epoch + epoch / 8});
        const double gib =
            static_cast<double>(space.FastTierBytes()) / (1ull << 30);
        trajectory.AddRow(
            {stats::Table::Fmt("after epoch %d", e),
             stats::Table::Fmt("%.1f", gib),
             stats::Table::Fmt("%.0f%%", 100.0 * gib / start_gib)});
    }
    sim.RunUntil(end);
    trajectory.Print();

    const double final_fraction =
        static_cast<double>(space.FastTierBytes()) /
        static_cast<double>(kPages * memmgr::kPageSize);

    stats::PrintHeading("Summary");
    stats::Table summary({"metric", "measured", "paper"});
    summary.AddRow(
        {"footprint reduction after 3 epochs",
         stats::Table::Fmt("%.0f%%", (1.0 - final_fraction) * 100.0),
         "79% (102 GiB -> 21.3 GiB)"});
    summary.AddRow({"GET median latency",
                    bench::FmtNs(static_cast<double>(
                        get_latency.Percentile(0.50))),
                    "12 us"});
    summary.AddRow({"GET p99 latency",
                    bench::FmtNs(static_cast<double>(
                        get_latency.Percentile(0.99))),
                    "31 us"});
    summary.AddRow({"swap-device fault p99",
                    bench::FmtNs(static_cast<double>(
                        swap.Latency().Percentile(0.99))),
                    "-"});
    summary.AddRow(
        {"pages migrated",
         stats::Table::Fmt("%llu", static_cast<unsigned long long>(
                                       agent.Stats().pages_migrated)),
         "-"});
    summary.Print();
    return 0;
}
