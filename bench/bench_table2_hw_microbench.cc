/**
 * @file
 * EXP-T2: reproduces Table 2 — hardware microbenchmarks of the
 * host-SmartNIC interface (MMIO reads/writes, MSI-X paths).
 *
 * Each row measures the corresponding operation on the simulated PCIe
 * interconnect, exactly as the paper measured its Mount Evans testbed.
 */
#include <cstdint>

#include "bench/bench_util.h"
#include "pcie/mmio.h"
#include "pcie/msix.h"
#include "sim/simulator.h"
#include "stats/table.h"

namespace wave {
namespace {

using sim::Simulator;
using sim::Task;
using sim::DurationNs;
using sim::TimeNs;

/** Measures the simulated duration of one operation. */
template <typename MakeTask>
DurationNs
Measure(MakeTask&& make)
{
    Simulator sim;
    DurationNs cost{};
    sim.Spawn(make(sim, cost));
    sim.Run();
    return cost;
}

DurationNs
MeasureMmioRead()
{
    return Measure([](Simulator& sim, DurationNs& cost) -> Task<> {
        pcie::NicDram dram(sim, pcie::PcieConfig{}, 4096);
        pcie::HostMmioMapping map(dram, pcie::PteType::kUncacheable);
        std::uint64_t value = 0;
        const TimeNs t0 = sim.Now();
        co_await map.Read(0, &value, sizeof(value));
        cost = sim.Now() - t0;
    });
}

DurationNs
MeasureMmioWrite()
{
    return Measure([](Simulator& sim, DurationNs& cost) -> Task<> {
        pcie::NicDram dram(sim, pcie::PcieConfig{}, 4096);
        pcie::HostMmioMapping map(dram, pcie::PteType::kUncacheable);
        const std::uint64_t value = 42;
        const TimeNs t0 = sim.Now();
        co_await map.Write(0, &value, sizeof(value));
        cost = sim.Now() - t0;
    });
}

DurationNs
MeasureMsixSend(pcie::MsiXVector::SendPath path)
{
    return Measure([path](Simulator& sim, DurationNs& cost) -> Task<> {
        pcie::MsiXVector vector(sim, pcie::PcieConfig{});
        const TimeNs t0 = sim.Now();
        co_await vector.Send(path);
        cost = sim.Now() - t0;
    });
}

DurationNs
MeasureMsixReceive()
{
    return Measure([](Simulator& sim, DurationNs& cost) -> Task<> {
        pcie::MsiXVector vector(sim, pcie::PcieConfig{});
        co_await vector.Send();
        // Wait for pendency, then time only the receive cost.
        while (!vector.Pending()) {
            co_await sim.Delay(10);
        }
        const TimeNs t0 = sim.Now();
        co_await vector.WaitAndReceive();
        cost = sim.Now() - t0;
    });
}

DurationNs
MeasureMsixEndToEnd()
{
    Simulator sim;
    pcie::MsiXVector vector(sim, pcie::PcieConfig{});
    TimeNs send_start{};
    TimeNs handler_entry{};
    sim.Spawn([](Simulator& s, pcie::MsiXVector& v, TimeNs& entry) -> Task<> {
        co_await v.WaitAndReceive();
        entry = s.Now();
    }(sim, vector, handler_entry));
    sim.Spawn([](Simulator& s, pcie::MsiXVector& v, TimeNs& start) -> Task<> {
        start = s.Now();
        co_await v.Send();
    }(sim, vector, send_start));
    sim.Run();
    return handler_entry - send_start;
}

}  // namespace
}  // namespace wave

int
main()
{
    using namespace wave;
    bench::Banner("EXP-T2", "Table 2: hardware microbenchmarks");

    stats::Table table({"operation", "measured", "paper"});
    table.AddRow({"1. Host MMIO 64-bit Read (Uncacheable)",
                  bench::FmtNs(MeasureMmioRead().ToDouble()),
                  "750 ns"});
    table.AddRow({"2. Host MMIO 64-bit Write (Uncacheable)",
                  bench::FmtNs(MeasureMmioWrite().ToDouble()),
                  "50 ns"});
    table.AddRow({"3. MSI-X Send (Register Write)",
                  bench::FmtNs(MeasureMsixSend(
                      pcie::MsiXVector::SendPath::kRegisterWrite).ToDouble()),
                  "70 ns"});
    table.AddRow({"4. MSI-X Send (Ioctl + Register Write)",
                  bench::FmtNs(MeasureMsixSend(
                      pcie::MsiXVector::SendPath::kIoctl).ToDouble()),
                  "340 ns"});
    table.AddRow({"5. MSI-X Receive",
                  bench::FmtNs(MeasureMsixReceive().ToDouble()),
                  "350 ns"});
    table.AddRow({"6. MSI-X End-to-End",
                  bench::FmtNs(MeasureMsixEndToEnd().ToDouble()),
                  "1,600 ns"});
    table.Print();
    return 0;
}
