/**
 * @file
 * EXP-T2: reproduces Table 2 — hardware microbenchmarks of the
 * host-SmartNIC interface (MMIO reads/writes, MSI-X paths).
 *
 * Each row measures the corresponding operation on the simulated PCIe
 * interconnect, exactly as the paper measured its Mount Evans testbed.
 */
#include <cstdint>

#include "bench/bench_util.h"
#include "pcie/mmio.h"
#include "pcie/msix.h"
#include "sim/simulator.h"
#include "stats/table.h"

namespace wave {
namespace {

using sim::Simulator;
using sim::Task;
using sim::TimeNs;

/** Measures the simulated duration of one operation. */
template <typename MakeTask>
TimeNs
Measure(MakeTask&& make)
{
    Simulator sim;
    TimeNs cost = 0;
    sim.Spawn(make(sim, cost));
    sim.Run();
    return cost;
}

TimeNs
MeasureMmioRead()
{
    return Measure([](Simulator& sim, TimeNs& cost) -> Task<> {
        pcie::NicDram dram(sim, pcie::PcieConfig{}, 4096);
        pcie::HostMmioMapping map(dram, pcie::PteType::kUncacheable);
        std::uint64_t value = 0;
        const TimeNs t0 = sim.Now();
        co_await map.Read(0, &value, sizeof(value));
        cost = sim.Now() - t0;
    });
}

TimeNs
MeasureMmioWrite()
{
    return Measure([](Simulator& sim, TimeNs& cost) -> Task<> {
        pcie::NicDram dram(sim, pcie::PcieConfig{}, 4096);
        pcie::HostMmioMapping map(dram, pcie::PteType::kUncacheable);
        const std::uint64_t value = 42;
        const TimeNs t0 = sim.Now();
        co_await map.Write(0, &value, sizeof(value));
        cost = sim.Now() - t0;
    });
}

TimeNs
MeasureMsixSend(pcie::MsiXVector::SendPath path)
{
    return Measure([path](Simulator& sim, TimeNs& cost) -> Task<> {
        pcie::MsiXVector vector(sim, pcie::PcieConfig{});
        const TimeNs t0 = sim.Now();
        co_await vector.Send(path);
        cost = sim.Now() - t0;
    });
}

TimeNs
MeasureMsixReceive()
{
    return Measure([](Simulator& sim, TimeNs& cost) -> Task<> {
        pcie::MsiXVector vector(sim, pcie::PcieConfig{});
        co_await vector.Send();
        // Wait for pendency, then time only the receive cost.
        while (!vector.Pending()) {
            co_await sim.Delay(10);
        }
        const TimeNs t0 = sim.Now();
        co_await vector.WaitAndReceive();
        cost = sim.Now() - t0;
    });
}

TimeNs
MeasureMsixEndToEnd()
{
    Simulator sim;
    pcie::MsiXVector vector(sim, pcie::PcieConfig{});
    TimeNs send_start = 0;
    TimeNs handler_entry = 0;
    sim.Spawn([](Simulator& s, pcie::MsiXVector& v, TimeNs& entry) -> Task<> {
        co_await v.WaitAndReceive();
        entry = s.Now();
    }(sim, vector, handler_entry));
    sim.Spawn([](Simulator& s, pcie::MsiXVector& v, TimeNs& start) -> Task<> {
        start = s.Now();
        co_await v.Send();
    }(sim, vector, send_start));
    sim.Run();
    return handler_entry - send_start;
}

}  // namespace
}  // namespace wave

int
main()
{
    using namespace wave;
    bench::Banner("EXP-T2", "Table 2: hardware microbenchmarks");

    stats::Table table({"operation", "measured", "paper"});
    table.AddRow({"1. Host MMIO 64-bit Read (Uncacheable)",
                  bench::FmtNs(static_cast<double>(MeasureMmioRead())),
                  "750 ns"});
    table.AddRow({"2. Host MMIO 64-bit Write (Uncacheable)",
                  bench::FmtNs(static_cast<double>(MeasureMmioWrite())),
                  "50 ns"});
    table.AddRow({"3. MSI-X Send (Register Write)",
                  bench::FmtNs(static_cast<double>(MeasureMsixSend(
                      pcie::MsiXVector::SendPath::kRegisterWrite))),
                  "70 ns"});
    table.AddRow({"4. MSI-X Send (Ioctl + Register Write)",
                  bench::FmtNs(static_cast<double>(MeasureMsixSend(
                      pcie::MsiXVector::SendPath::kIoctl))),
                  "340 ns"});
    table.AddRow({"5. MSI-X Receive",
                  bench::FmtNs(static_cast<double>(MeasureMsixReceive())),
                  "350 ns"});
    table.AddRow({"6. MSI-X End-to-End",
                  bench::FmtNs(static_cast<double>(MeasureMsixEndToEnd())),
                  "1,600 ns"});
    table.Print();
    return 0;
}
