/**
 * @file
 * Ablation bench: prestage eagerness (§4.1 "Optimizations").
 *
 * The scheduler "eagerly prestages decisions when the run queue length
 * is sufficiently deep (e.g., linear in the number of cores)". This
 * sweep varies the minimum run-queue depth at which the agent
 * prestages, at a load near Wave-16 saturation, showing the trade-off:
 * too conservative leaves MSI-X round trips on the critical path; the
 * risk of over-eager prestaging (parking the only runnable thread
 * behind a busy core) is bounded by the commit-validation fallback.
 */
#include "bench/bench_util.h"
#include "stats/table.h"
#include "workload/sched_experiment.h"

int
main()
{
    using namespace wave;
    bench::Banner("EXP-ABL-PRESTAGE",
                  "prestage run-queue-depth threshold sweep (Wave-16 FIFO)");

    stats::Table table({"min depth", "achieved tput", "prestage hit rate",
                        "ctx-switch p50"});
    for (std::size_t depth : {1, 2, 4, 8, 16, 32, 64}) {
        workload::SchedExperimentConfig cfg;
        cfg.deployment = workload::Deployment::kWave;
        cfg.worker_cores = 16;
        cfg.num_workers = 64;
        cfg.prestage_min_depth = depth;
        cfg.offered_rps = 1'350'000;  // past the knee: achieved = capacity
        cfg.warmup_ns = 20'000'000;
        cfg.measure_ns = 60'000'000;
        const auto r = workload::RunSchedExperiment(cfg);
        const double hit_rate =
            r.idle_waits + r.prestage_hits > 0
                ? static_cast<double>(r.prestage_hits) /
                      static_cast<double>(r.prestage_hits + r.idle_waits)
                : 0.0;
        table.AddRow({stats::Table::Fmt("%zu", depth),
                      bench::FmtTput(r.achieved_rps),
                      stats::Table::Fmt("%.0f%%", hit_rate * 100),
                      bench::FmtNs(r.ctx_switch_p50.ToDouble())});
    }
    table.Print();

    stats::PrintHeading("No prestaging at all, for reference");
    workload::SchedExperimentConfig cfg;
    cfg.deployment = workload::Deployment::kWave;
    cfg.worker_cores = 16;
    cfg.num_workers = 64;
    cfg.prestage = false;
    cfg.offered_rps = 1'350'000;
    cfg.warmup_ns = 20'000'000;
    cfg.measure_ns = 60'000'000;
    const auto r = workload::RunSchedExperiment(cfg);
    std::printf("achieved %s, ctx-switch p50 %s\n",
                bench::FmtTput(r.achieved_rps).c_str(),
                bench::FmtNs(r.ctx_switch_p50.ToDouble()).c_str());
    return 0;
}
