/**
 * @file
 * EXP-F6A: reproduces Figure 6a — RocksDB behind the Stubby-style RPC
 * stack with single-queue Shinjuku scheduling, for the three §7.3.1
 * placements.
 *
 * Paper shape: OnHost-All and Offload-All saturate about equally
 * (Offload-All recovers 9 host cores); OnHost-Scheduler saturates far
 * lower because the on-host scheduler reads RPC headers over PCIe.
 * Apples-to-apples: Offload-All restricted to 15 host cores is ~6.3%
 * below OnHost-All.
 */
#include "bench/bench_util.h"
#include "rpc/rpc_experiment.h"
#include "stats/table.h"

namespace {

using namespace wave;
using rpc::RpcExperimentConfig;
using rpc::RpcScenario;

RpcExperimentConfig
Scenario(RpcScenario scenario, bool multi_queue, int rocksdb_cores)
{
    RpcExperimentConfig cfg;
    cfg.scenario = scenario;
    cfg.multi_queue = multi_queue;
    cfg.rocksdb_cores = rocksdb_cores;
    cfg.warmup_ns = 40'000'000;
    cfg.measure_ns = 150'000'000;
    return cfg;
}

}  // namespace

int
main()
{
    bench::Banner("EXP-F6A",
                  "Figure 6a: RPC stack + single-queue Shinjuku");

    struct Row {
        const char* name;
        RpcScenario scenario;
        int cores;
    };
    const Row rows[] = {
        {"OnHost-All", RpcScenario::kOnHostAll, 15},
        {"OnHost-Scheduler", RpcScenario::kOnHostScheduler, 15},
        {"Offload-All", RpcScenario::kOffloadAll, 16},
    };

    stats::Table curve({"offered", "scenario", "achieved", "GET p99"});
    for (double rps = 80'000; rps <= 230'000; rps += 50'000) {
        for (const Row& row : rows) {
            RpcExperimentConfig cfg =
                Scenario(row.scenario, false, row.cores);
            cfg.offered_rps = rps;
            const auto r = rpc::RunRpcExperiment(cfg);
            curve.AddRow({bench::FmtTput(rps), row.name,
                          bench::FmtTput(r.achieved_rps),
                          bench::FmtNs(r.get_p99.ToDouble())});
        }
    }
    curve.Print();

    stats::PrintHeading("Saturation summary (GET p99 <= 200us knee)");
    double sat[3];
    for (int i = 0; i < 3; ++i) {
        sat[i] = rpc::FindRpcSaturation(
            Scenario(rows[i].scenario, false, rows[i].cores), 60'000,
            260'000, 10'000, 200'000);
    }
    const double offload15 = rpc::FindRpcSaturation(
        Scenario(RpcScenario::kOffloadAll, false, 15), 60'000, 260'000,
        10'000, 200'000);

    stats::Table summary({"scenario", "saturation", "vs OnHost-All",
                          "paper"});
    summary.AddRow({"OnHost-All", bench::FmtTput(sat[0]), "-",
                    "baseline"});
    summary.AddRow({"OnHost-Scheduler", bench::FmtTput(sat[1]),
                    bench::FmtPct(sat[1] / sat[0] - 1.0),
                    "much lower"});
    summary.AddRow({"Offload-All (16c)", bench::FmtTput(sat[2]),
                    bench::FmtPct(sat[2] / sat[0] - 1.0),
                    "~equal, frees 9 cores"});
    summary.AddRow({"Offload-All (15c, apples-to-apples)",
                    bench::FmtTput(offload15),
                    bench::FmtPct(offload15 / sat[0] - 1.0), "-6.3%"});
    summary.Print();
    return 0;
}
