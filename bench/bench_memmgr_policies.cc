/**
 * @file
 * Ablation bench: SOL vs the LRU-CLOCK baseline (§4.2).
 *
 * The paper motivates SOL over conventional approximations: CLOCK
 * scans every batch at a fixed rate (each scan implies TLB-flush
 * overhead), while SOL learns per-batch scan frequencies. This bench
 * runs both policies over the same skewed workload (20% hot set) on
 * the same offloaded agent and reports steady-state scan volume,
 * iteration durations, and classification accuracy after one epoch.
 */
#include <memory>

#include "bench/bench_util.h"
#include "machine/machine.h"
#include "memmgr/clock_policy.h"
#include "sim/random.h"
#include "sim/simulator.h"
#include "sol/agent.h"
#include "stats/table.h"

namespace {

using namespace wave;

constexpr std::size_t kBatches = 8192;
constexpr std::size_t kPages = 64 * kBatches;  // 2 GiB
constexpr double kHotFraction = 0.20;

struct Outcome {
    std::uint64_t scans = 0;
    sim::DurationNs mean_iteration_ns = 0;
    double fast_fraction = 0;
    double hot_kept_fraction = 0;  // hot pages still in the fast tier
};

Outcome
RunPolicy(std::unique_ptr<memmgr::MemPolicy> policy)
{
    sim::Simulator sim;
    machine::Machine machine(sim);
    memmgr::AddressSpace space(kPages);

    sol::SolDeployment deployment;
    for (int i = 0; i < 8; ++i) {
        deployment.cpus.push_back(&machine.NicCpu(i));
    }
    pcie::DmaEngine dma(sim, pcie::PcieConfig{});
    deployment.dma = &dma;
    const sim::DurationNs epoch = policy->EpochNs();
    sol::SolAgent agent(sim, space, deployment, std::move(policy));

    // Skewed toucher: 98% of touches in the hot 20%.
    sim.Spawn([](sim::Simulator& s, memmgr::AddressSpace& sp) -> sim::Task<> {
        sim::Rng rng(5);
        const std::size_t hot =
            static_cast<std::size_t>(kHotFraction * kPages);
        for (;;) {
            for (int i = 0; i < 8192; ++i) {
                const std::size_t page =
                    rng.NextBernoulli(0.98)
                        ? rng.NextBounded(hot)
                        : hot + rng.NextBounded(kPages - hot);
                sp.Touch(page);
            }
            co_await s.Delay(50'000'000);
        }
    }(sim, space));

    const sim::TimeNs end{epoch + epoch / 4};  // one epoch + margin
    sim.Spawn([](sol::SolAgent& a, sim::TimeNs until) -> sim::Task<> {
        co_await a.RunUntil(until);
    }(agent, end));
    sim.RunUntil(end);

    Outcome outcome;
    outcome.scans = agent.Stats().batches_scanned;
    outcome.mean_iteration_ns = sim::DurationNs::FromDouble(
        agent.Stats().iteration_ns.Mean());
    outcome.fast_fraction =
        static_cast<double>(space.FastTierPages()) /
        static_cast<double>(kPages);
    const std::size_t hot_pages =
        static_cast<std::size_t>(kHotFraction * kPages);
    std::size_t hot_fast = 0;
    for (std::size_t page = 0; page < hot_pages; ++page) {
        hot_fast += space.TierOf(page) == memmgr::Tier::kFast;
    }
    outcome.hot_kept_fraction = static_cast<double>(hot_fast) /
                                static_cast<double>(hot_pages);
    return outcome;
}

}  // namespace

int
main()
{
    bench::Banner("EXP-ABL-MEMPOL",
                  "§4.2 ablation: SOL vs LRU-CLOCK over one epoch");

    const Outcome sol =
        RunPolicy(std::make_unique<sol::SolPolicy>(sol::SolConfig{},
                                                   kBatches));
    memmgr::ClockConfig clock_config;
    clock_config.scan_period_ns = 600'000'000;  // SOL's fastest rung
    const Outcome clock = RunPolicy(
        std::make_unique<memmgr::ClockPolicy>(clock_config, kBatches));

    stats::Table table({"metric", "SOL (Thompson sampling)",
                        "LRU-CLOCK (fixed period)"});
    table.AddRow({"batch scans over one epoch",
                  stats::Table::Fmt("%llu",
                                    static_cast<unsigned long long>(
                                        sol.scans)),
                  stats::Table::Fmt("%llu",
                                    static_cast<unsigned long long>(
                                        clock.scans))});
    table.AddRow({"mean agent iteration",
                  bench::FmtNs(sol.mean_iteration_ns.ToDouble()),
                  bench::FmtNs(clock.mean_iteration_ns.ToDouble())});
    table.AddRow({"fast-tier fraction after epoch",
                  stats::Table::Fmt("%.0f%%", sol.fast_fraction * 100),
                  stats::Table::Fmt("%.0f%%", clock.fast_fraction * 100)});
    table.AddRow({"hot pages kept fast",
                  stats::Table::Fmt("%.0f%%", sol.hot_kept_fraction * 100),
                  stats::Table::Fmt("%.0f%%",
                                    clock.hot_kept_fraction * 100)});
    table.Print();

    std::printf(
        "\nSOL shrinks the fast tier to the hot set with a fraction of "
        "CLOCK's\nscan volume, and its fractional-evidence posterior "
        "is robust to stray\ntouches that keep resetting CLOCK's "
        "consecutive-idle counter (which is\nwhy CLOCK strands most "
        "cold batches in the fast tier here).\n");
    return 0;
}
