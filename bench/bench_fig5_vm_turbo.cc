/**
 * @file
 * EXP-F5: reproduces Figure 5 — virtual machine compute performance
 * when scheduled by Wave (no timer ticks) vs on-host ghOSt (1 ms ticks
 * on every core).
 *
 * Two 128-vCPU VMs share one 128-logical-core socket (64 physical
 * cores, SMT2). busy_loop runs on 1..128 vCPUs, first hyperthreads
 * first. With the on-host scheduler every core takes 1 ms ticks, which
 * (a) steals ~1.7% of active cores' cycles and (b) keeps idle cores
 * out of deep C-states, capping the turbo frequency of the active
 * cores. The Wave deployment needs no ticks, so idle cores sleep
 * deeply and the active ones boost higher.
 *
 * Paper shape (Fig 5b): +11.2% at 1 active vCPU, ~+9.7% at 31, +1.7%
 * at 128 (tick savings only).
 */
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "ghost/agent.h"
#include "ghost/kernel.h"
#include "ghost/transport.h"
#include "machine/machine.h"
#include "machine/turbo.h"
#include "sched/vm_policy.h"
#include "sim/simulator.h"
#include "stats/table.h"
#include "wave/runtime.h"
#include "workload/busy_loop.h"

namespace {

using namespace wave;

constexpr int kLogicalCores = 128;
constexpr int kPhysicalCores = 64;
constexpr double kSmtYieldPerSibling = 0.775;  // both siblings busy
constexpr sim::DurationNs kMeasureNs = 120'000'000;  // 120 ms

/** Work output (GHz-seconds) of n active vCPUs under one deployment. */
double
MeasureWorkOutput(int active_vcpus, bool ticks)
{
    sim::Simulator sim;
    machine::MachineConfig mc;
    mc.host_cores = kLogicalCores + 1;  // +1 hosts the on-host agent
    machine::Machine machine(sim, mc);

    // Frequency for this activity level: idle cores reach deep C-states
    // only when ticks are disabled (the Wave deployment).
    const int active_physical = std::min(active_vcpus, kPhysicalCores);
    machine::TurboModel turbo;
    const machine::FreqGhz freq =
        turbo.Frequency(active_physical, /*idle_cores_deep=*/!ticks);
    machine.HostDomain().SetSpeed(freq.RatioTo(machine::kReferenceFreq));

    WaveRuntime runtime(sim, machine, pcie::PcieConfig{},
                        api::OptimizationConfig::Full());
    std::unique_ptr<ghost::SchedTransport> transport;
    if (ticks) {
        transport = std::make_unique<ghost::ShmSchedTransport>(
            sim, kLogicalCores);
    } else {
        transport = std::make_unique<ghost::WaveSchedTransport>(
            runtime, kLogicalCores);
    }
    ghost::GhostCosts costs;
    ghost::KernelOptions options;
    options.timer_ticks = ticks;
    ghost::KernelSched kernel(sim, machine, *transport, costs, options);

    auto policy = std::make_shared<sched::VmPolicy>();
    ghost::AgentConfig agent_cfg;
    std::vector<int> cores;
    for (int c = 0; c < kLogicalCores; ++c) cores.push_back(c);
    agent_cfg.cores = cores;
    agent_cfg.prestage = false;  // VMs are ms-scale; no prestaging (§7.2.4)
    auto agent = std::make_shared<ghost::GhostAgent>(*transport, policy,
                                                     agent_cfg);
    std::unique_ptr<AgentContext> host_ctx;
    if (ticks) {
        // On-host agent: one polling instance on its own host core.
        host_ctx = std::make_unique<AgentContext>(
            sim, machine.HostCpu(kLogicalCores));
        sim.Spawn(agent->Run(*host_ctx));
    } else {
        runtime.StartWaveAgent(agent, 0);
    }

    // Two VMs x 128 vCPUs: logical core c hosts vCPU A_c and B_c.
    // Active vCPUs fill first hyperthreads (logical 0..63) before the
    // second siblings (64..127), alternating VMs.
    std::vector<std::shared_ptr<workload::BusyLoopBody>> busy;
    for (int c = 0; c < kLogicalCores; ++c) {
        const ghost::Tid tid_a = 1000 + c;
        const ghost::Tid tid_b = 2000 + c;
        const bool is_active = c < active_vcpus;
        policy->PinVcpu(tid_a, c);
        policy->PinVcpu(tid_b, c);
        if (is_active) {
            auto body = std::make_shared<workload::BusyLoopBody>();
            busy.push_back(body);
            // Alternate which VM owns the busy vCPU on this core.
            kernel.AddThread(c % 2 == 0 ? tid_a : tid_b, body);
            kernel.AddThread(c % 2 == 0 ? tid_b : tid_a,
                             std::make_shared<workload::IdleVcpuBody>());
        } else {
            kernel.AddThread(tid_a,
                             std::make_shared<workload::IdleVcpuBody>());
            kernel.AddThread(tid_b,
                             std::make_shared<workload::IdleVcpuBody>());
        }
    }
    kernel.Start(cores);

    // Let placement settle, then measure a fixed window.
    sim.RunFor(10'000'000);
    std::vector<sim::DurationNs> snapshot;
    for (const auto& body : busy) snapshot.push_back(body->BusyNs());
    sim.RunFor(kMeasureNs);

    double work_ghz_s = 0;
    for (std::size_t i = 0; i < busy.size(); ++i) {
        const double ran_s =
            sim::ToSec(busy[i]->BusySince(snapshot[i]));
        // Second hyperthreads yield less than a full core.
        const int logical = static_cast<int>(i);
        const bool smt_shared =
            logical < kPhysicalCores
                ? active_vcpus > kPhysicalCores + logical
                : true;
        const double smt = smt_shared ? kSmtYieldPerSibling : 1.0;
        work_ghz_s += ran_s * freq.ghz() * smt;
    }
    return work_ghz_s;
}

}  // namespace

int
main()
{
    bench::Banner("EXP-F5",
                  "Figure 5: VM compute, Wave (no ticks) vs ghOSt (ticks)");

    struct PaperPoint {
        int active;
        const char* improvement;
    };
    const int counts[] = {1, 2, 4, 8, 16, 31, 32, 48, 64, 96, 128};

    stats::Table table({"active vCPUs", "ghOSt+ticks (GHz-s)",
                        "Wave no-ticks (GHz-s)", "improvement", "paper"});
    for (int n : counts) {
        const double with_ticks = MeasureWorkOutput(n, /*ticks=*/true);
        const double no_ticks = MeasureWorkOutput(n, /*ticks=*/false);
        const char* paper = n == 1     ? "+11.2%"
                            : n == 31  ? "+9.7%"
                            : n == 128 ? "+1.7%"
                                       : "";
        table.AddRow({stats::Table::Fmt("%d", n),
                      stats::Table::Fmt("%.2f", with_ticks),
                      stats::Table::Fmt("%.2f", no_ticks),
                      bench::FmtPct(no_ticks / with_ticks - 1.0), paper});
    }
    table.Print();
    return 0;
}
