/**
 * @file
 * Machine-readable bench output: the BENCH_*.json perf trajectory.
 *
 * Human-readable tables show a run's shape; the JSON emitter records it
 * for machines, so CI can diff today's numbers against a checked-in
 * baseline (tools/bench_gate.py) and the repo accumulates a perf
 * trajectory over time. Schema (`wave-bench-v1`, see docs/perf.md):
 *
 *     {
 *       "schema": "wave-bench-v1",
 *       "bench": "simcore",
 *       "metrics": [
 *         {"name": "events_per_sec", "value": 1.2e7, "unit": "1/s"},
 *         ...
 *       ]
 *     }
 *
 * Metric names are stable identifiers: the gate script and any plots
 * key on them, so renaming one is a breaking change to the trajectory.
 * `value` is always a double; `unit` is informational.
 */
// wave-domain: harness
#pragma once

#include <cstdio>
#include <string>
#include <vector>

namespace wave::bench {

/** One named measurement inside a BENCH_*.json report. */
struct JsonMetric {
    std::string name;
    double value = 0.0;
    std::string unit;
};

/** Accumulates metrics and writes one wave-bench-v1 JSON file. */
class BenchJson {
  public:
    explicit BenchJson(std::string bench_name)
        : bench_name_(std::move(bench_name))
    {
    }

    void
    Add(std::string name, double value, std::string unit)
    {
        metrics_.push_back(
            JsonMetric{std::move(name), value, std::move(unit)});
    }

    /** Writes the report; returns false (and prints why) on failure. */
    bool
    WriteTo(const std::string& path) const
    {
        std::FILE* f = std::fopen(path.c_str(), "w");
        if (f == nullptr) {
            std::fprintf(stderr, "bench_json: cannot open %s\n",
                         path.c_str());
            return false;
        }
        std::fprintf(f, "{\n  \"schema\": \"wave-bench-v1\",\n");
        std::fprintf(f, "  \"bench\": \"%s\",\n", bench_name_.c_str());
        std::fprintf(f, "  \"metrics\": [\n");
        for (std::size_t i = 0; i < metrics_.size(); ++i) {
            const JsonMetric& m = metrics_[i];
            std::fprintf(f,
                         "    {\"name\": \"%s\", \"value\": %.17g, "
                         "\"unit\": \"%s\"}%s\n",
                         m.name.c_str(), m.value, m.unit.c_str(),
                         i + 1 < metrics_.size() ? "," : "");
        }
        std::fprintf(f, "  ]\n}\n");
        std::fclose(f);
        std::printf("bench_json: wrote %s (%zu metrics)\n", path.c_str(),
                    metrics_.size());
        return true;
    }

  private:
    std::string bench_name_;
    std::vector<JsonMetric> metrics_;
};

/** Parses `--json <path>` and `--quick` from argv (shared bench CLI). */
struct JsonCliArgs {
    std::string json_path;  ///< empty => human-readable mode
    bool quick = false;     ///< reduced iteration counts for CI smoke

    static JsonCliArgs
    Parse(int argc, char** argv)
    {
        JsonCliArgs args;
        for (int i = 1; i < argc; ++i) {
            const std::string arg = argv[i];
            if (arg == "--json" && i + 1 < argc) {
                args.json_path = argv[++i];
            } else if (arg == "--quick") {
                args.quick = true;
            }
        }
        return args;
    }
};

}  // namespace wave::bench
