/**
 * @file
 * EXP-SOL: reproduces the §7.4.2 table — SOL per-iteration agent loop
 * duration vs. core count, offloaded (Wave, SmartNIC ARM cores) vs.
 * on-host (x86 cores).
 *
 * The address space is the paper's: RocksDB at ~100 GiB = 26.2M 4 KiB
 * pages = 409,600 classification batches. The iteration measured is
 * the full first scan (every batch due), matching the table's regime;
 * later iterations get cheaper as Thompson sampling stretches cold
 * batches' scan periods.
 */
#include <memory>

#include "bench/bench_util.h"
#include "machine/machine.h"
#include "sim/simulator.h"
#include "sol/agent.h"
#include "stats/table.h"

namespace {

using namespace wave;

constexpr std::size_t kPages = 409'600ull * 64;  // ~100 GiB

sim::DurationNs
MeasureIteration(int cores, bool offloaded)
{
    sim::Simulator sim;
    machine::Machine machine(sim);
    memmgr::AddressSpace space(kPages);

    sol::SolDeployment deployment;
    for (int i = 0; i < cores; ++i) {
        deployment.cpus.push_back(offloaded ? &machine.NicCpu(i)
                                            : &machine.HostCpu(i));
    }
    std::unique_ptr<pcie::DmaEngine> dma;
    if (offloaded) {
        dma = std::make_unique<pcie::DmaEngine>(sim, pcie::PcieConfig{});
        deployment.dma = dma.get();
    }
    sol::SolAgent agent(sim, space, deployment);

    sim::DurationNs duration = 0;
    sim.Spawn([](sol::SolAgent& a, sim::DurationNs& out) -> sim::Task<> {
        out = co_await a.RunIteration();
    }(agent, duration));
    sim.Run();
    return duration;
}

}  // namespace

int
main()
{
    bench::Banner("EXP-SOL",
                  "§7.4.2: SOL per-iteration duration vs core count");

    struct PaperRow {
        int cores;
        const char* wave;
        const char* onhost;
    };
    const PaperRow paper[] = {
        {1, "1,018 ms", "623 ms"}, {2, "576 ms", "431 ms"},
        {4, "437 ms", "354 ms"},   {8, "384 ms", "322 ms"},
        {16, "364 ms", "309 ms"},
    };

    stats::Table table({"# cores", "Wave (measured)", "Wave (paper)",
                        "On-Host (measured)", "On-Host (paper)"});
    for (const PaperRow& row : paper) {
        const auto wave_ns = MeasureIteration(row.cores, true);
        const auto host_ns = MeasureIteration(row.cores, false);
        table.AddRow({stats::Table::Fmt("%d", row.cores),
                      bench::FmtNs(wave_ns.ToDouble()), row.wave,
                      bench::FmtNs(host_ns.ToDouble()),
                      row.onhost});
    }
    table.Print();

    stats::PrintHeading("Transfer overheads (paper: ~1 ms PTE DMA)");
    {
        sim::Simulator sim;
        pcie::DmaEngine dma(sim, pcie::PcieConfig{});
        // Access bitmap for the full address space, one bit per page.
        const std::size_t bytes = kPages / 8;
        std::printf("full-address-space access-bit DMA: %s "
                    "(%zu KiB at 20 GB/s + setup)\n",
                    bench::FmtNs((dma.TransferTime(bytes) +
                                  pcie::PcieConfig{}.nic_wb_access_ns * 2)
                                     .ToDouble()).c_str(),
                    bytes / 1024);
    }
    return 0;
}
