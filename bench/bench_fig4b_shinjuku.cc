/**
 * @file
 * EXP-F4B: reproduces Figure 4b — Shinjuku preemptive scheduling of a
 * dispersive mix (99.5% 10 µs GETs, 0.5% 10 ms RANGEs, 30 µs slice).
 *
 * The preemption path rides MSI-X when offloaded, and prefetching
 * cannot hide the decision read on preemption (the host reads it
 * immediately on interrupt receipt), so the offload gap is larger than
 * FIFO's. Paper shape: Wave-15 saturates 7.6% below On-Host, Wave-16
 * 1.9% above.
 */
#include "bench/bench_util.h"
#include "stats/table.h"
#include "workload/sched_experiment.h"

namespace {

using namespace wave;
using workload::Deployment;
using workload::SchedExperimentConfig;

SchedExperimentConfig
Scenario(int mode)
{
    SchedExperimentConfig cfg;
    cfg.deployment = mode == 0 ? Deployment::kOnHost : Deployment::kWave;
    cfg.worker_cores = mode == 2 ? 16 : 15;
    cfg.policy = workload::PolicyKind::kShinjuku;
    cfg.get_fraction = 0.995;
    cfg.slice_ns = 30'000;
    cfg.num_workers = 64;
    cfg.prestage_min_depth = 4;
    cfg.warmup_ns = 50'000'000;
    cfg.measure_ns = 200'000'000;
    return cfg;
}

}  // namespace

int
main()
{
    bench::Banner("EXP-F4B",
                  "Figure 4b: Shinjuku, 99.5% GET + 0.5% 10ms RANGE");

    const char* names[] = {"On-Host", "Wave-15", "Wave-16"};

    stats::Table curve({"offered", "scenario", "achieved", "GET p99",
                        "preemptions"});
    for (double rps = 60'000; rps <= 240'000; rps += 45'000) {
        for (int mode = 0; mode < 3; ++mode) {
            SchedExperimentConfig cfg = Scenario(mode);
            cfg.offered_rps = rps;
            const auto r = workload::RunSchedExperiment(cfg);
            curve.AddRow(
                {bench::FmtTput(rps), names[mode],
                 bench::FmtTput(r.achieved_rps),
                 bench::FmtNs(r.get_p99.ToDouble()),
                 stats::Table::Fmt("%llu",
                                   static_cast<unsigned long long>(
                                       r.preemptions))});
        }
    }
    curve.Print();

    stats::PrintHeading("Saturation summary");
    double sat[3];
    for (int mode = 0; mode < 3; ++mode) {
        sat[mode] = workload::FindSaturationThroughput(
            Scenario(mode), 170'000, 250'000, 8'000);
    }
    stats::Table summary({"scenario", "saturation", "vs On-Host",
                          "paper"});
    summary.AddRow({"On-Host", bench::FmtTput(sat[0]), "-", "baseline"});
    summary.AddRow({"Wave-15", bench::FmtTput(sat[1]),
                    bench::FmtPct(sat[1] / sat[0] - 1.0), "-7.6%"});
    summary.AddRow({"Wave-16", bench::FmtTput(sat[2]),
                    bench::FmtPct(sat[2] / sat[0] - 1.0), "+1.9%"});
    summary.Print();
    return 0;
}
