/**
 * @file
 * Shared helpers for the experiment-reproduction benches.
 *
 * Every bench binary regenerates one table or figure from the paper and
 * prints the same rows/series, with a `paper=` reference column so the
 * reproduction quality is visible at a glance. Absolute values come
 * from a simulator rather than the authors' testbed, so the *shape*
 * (who wins, by roughly what factor, where crossovers fall) is the
 * comparison that matters; EXPERIMENTS.md records both.
 */
#pragma once

#include <cstdio>
#include <string>

#include "stats/table.h"

namespace wave::bench {

/** Prints the standard bench banner. */
inline void
Banner(const std::string& experiment_id, const std::string& title)
{
    std::printf("==============================================================\n");
    std::printf("%s — %s\n", experiment_id.c_str(), title.c_str());
    std::printf("(simulated reproduction; compare shapes, not absolutes)\n");
    std::printf("==============================================================\n");
    std::fflush(stdout);
}

/** Formats a nanosecond value like the paper ("426 ns", "1.6 us"). */
inline std::string
FmtNs(double ns)
{
    if (ns < 10'000) return stats::Table::Fmt("%.0f ns", ns);
    if (ns < 10'000'000) return stats::Table::Fmt("%.1f us", ns / 1e3);
    if (ns < 10'000'000'000.0) {
        return stats::Table::Fmt("%.1f ms", ns / 1e6);
    }
    return stats::Table::Fmt("%.2f s", ns / 1e9);
}

/** Formats a throughput in the paper's units (requests/sec). */
inline std::string
FmtTput(double rps)
{
    return stats::Table::Fmt("%.0fk", rps / 1e3);
}

/** Formats a percentage delta. */
inline std::string
FmtPct(double frac)
{
    return stats::Table::Fmt("%+.1f%%", frac * 100.0);
}

}  // namespace wave::bench
