/**
 * @file
 * EXP-OPT: reproduces the §7.2.2 optimization-ladder table — FIFO
 * Wave-16 saturation throughput as each §5.3/§5.4 optimization is
 * enabled cumulatively (paper: 258k -> +102% -> +31% -> +32%).
 *
 * The ladder also carries one engine-level rung: the simulator's
 * timing-wheel event queue raced against a reference std::priority_queue
 * with the exact ordering the wheel replaced. `--json <path>` (with
 * optional `--quick`) runs just that rung and writes a wave-bench-v1
 * report (BENCH_queue_ladder.json) so CI can gate the wheel's win via
 * tools/bench_gate.py; both queues' pop streams are cross-checked by
 * fingerprint before any number is reported.
 */
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <queue>
#include <vector>

#include "bench/bench_json.h"
#include "bench/bench_util.h"
#include "check/fnv.h"
#include "sim/time.h"
#include "sim/timing_wheel.h"
#include "stats/table.h"
#include "workload/sched_experiment.h"

namespace {

using namespace wave;
using sim::EventNode;
using sim::TimeNs;
using sim::TimingWheel;

// --- wheel-vs-heap rung -------------------------------------------------

/**
 * Reference event record with the ordering the timing wheel replaced:
 * ascending (when, key, seq), unkeyed events carrying the all-ones
 * sentinel key so they sort after keyed events at a timestamp.
 */
struct HeapEvent {
    TimeNs when;
    std::uint64_t key;
    std::uint64_t seq;

    bool
    operator>(const HeapEvent& other) const
    {
        if (when.ns() != other.when.ns()) {
            return when.ns() > other.when.ns();
        }
        if (key != other.key) return key > other.key;
        return seq > other.seq;
    }
};

/**
 * The churn schedule both queues run: mostly sub-page delays (the event
 * loop's steady state), a slice of multi-page delays that exercise the
 * wheel's far ring, and a trickle of multi-millisecond timers that land
 * in its overflow tier. Every 16th event is keyed.
 */
std::uint64_t
DelayFor(int i)
{
    if (i % 97 == 0) return 30'000'000;  // beyond the far horizon
    if (i % 31 == 0) return 200'000;     // a few pages out
    return static_cast<std::uint64_t>(i % 64);
}

std::uint64_t
KeyFor(int i)
{
    return i % 16 == 0 ? static_cast<std::uint64_t>(i)
                       : EventNode::kUnkeyed;
}

struct QueueRunResult {
    double events_per_sec = 0.0;
    std::uint64_t fingerprint = check::kFnvOffsetBasis;
};

/** Drives the timing wheel through the churn schedule. */
QueueRunResult
RunWheel(int rounds, int events_per_round)
{
    TimingWheel wheel;
    QueueRunResult result;
    std::uint64_t total = 0;
    TimeNs now{};
    const auto t0 = std::chrono::steady_clock::now();
    for (int r = 0; r < rounds; ++r) {
        for (int i = 0; i < events_per_round; ++i) {
            wheel.Push(now + DelayFor(i), KeyFor(i), sim::InlineFn{});
        }
        while (EventNode* node = wheel.PopMin()) {
            now = node->when;
            result.fingerprint =
                check::FnvWord(result.fingerprint, node->when.ns());
            result.fingerprint =
                check::FnvWord(result.fingerprint, node->seq);
            wheel.Recycle(node);
            ++total;
        }
    }
    const auto t1 = std::chrono::steady_clock::now();
    result.events_per_sec =
        static_cast<double>(total) /
        std::chrono::duration<double>(t1 - t0).count();
    return result;
}

/** Drives the reference priority queue through the same schedule. */
QueueRunResult
RunHeap(int rounds, int events_per_round)
{
    std::priority_queue<HeapEvent, std::vector<HeapEvent>,
                        std::greater<>>
        heap;
    QueueRunResult result;
    std::uint64_t total = 0;
    std::uint64_t seq = 0;
    TimeNs now{};
    const auto t0 = std::chrono::steady_clock::now();
    for (int r = 0; r < rounds; ++r) {
        for (int i = 0; i < events_per_round; ++i) {
            heap.push(
                HeapEvent{now + DelayFor(i), KeyFor(i), seq++});
        }
        while (!heap.empty()) {
            const HeapEvent ev = heap.top();
            heap.pop();
            now = ev.when;
            result.fingerprint =
                check::FnvWord(result.fingerprint, ev.when.ns());
            result.fingerprint =
                check::FnvWord(result.fingerprint, ev.seq);
            ++total;
        }
    }
    const auto t1 = std::chrono::steady_clock::now();
    result.events_per_sec =
        static_cast<double>(total) /
        std::chrono::duration<double>(t1 - t0).count();
    return result;
}

/**
 * Best-of-reps wheel and heap throughput on the identical schedule.
 * Aborts if the two pop streams ever diverge: the rung is only a fair
 * race while both queues yield the same (when, key, seq) order.
 */
void
MeasureQueueRung(bench::BenchJson* json, bool quick)
{
    constexpr int kEventsPerRound = 1000;
    const int rounds = quick ? 300 : 2000;
    const int reps = quick ? 5 : 3;

    QueueRunResult wheel;
    QueueRunResult heap;
    for (int rep = 0; rep < reps; ++rep) {
        const QueueRunResult w = RunWheel(rounds, kEventsPerRound);
        const QueueRunResult h = RunHeap(rounds, kEventsPerRound);
        if (w.fingerprint != h.fingerprint) {
            std::fprintf(stderr,
                         "bench_opt_ladder: wheel/heap pop order "
                         "diverged (%016llx vs %016llx)\n",
                         static_cast<unsigned long long>(w.fingerprint),
                         static_cast<unsigned long long>(h.fingerprint));
            std::exit(1);
        }
        if (w.events_per_sec > wheel.events_per_sec) wheel = w;
        if (h.events_per_sec > heap.events_per_sec) heap = h;
    }

    const double speedup = wheel.events_per_sec / heap.events_per_sec;
    if (json != nullptr) {
        json->Add("wheel_events_per_sec", wheel.events_per_sec, "1/s");
        json->Add("heap_events_per_sec", heap.events_per_sec, "1/s");
        json->Add("wheel_vs_heap_speedup", speedup, "x");
    } else {
        stats::PrintHeading("engine rung: event-queue implementation");
        stats::Table table({"queue", "push+pop throughput", "delta"});
        table.AddRow({"binary heap (reference)",
                      bench::FmtTput(heap.events_per_sec), "-"});
        table.AddRow({"timing wheel (current)",
                      bench::FmtTput(wheel.events_per_sec),
                      bench::FmtPct(speedup - 1.0)});
        table.Print();
    }
}

// --- §7.2.2 optimization ladder -----------------------------------------

void
RunPaperLadder()
{
    using workload::Deployment;
    using workload::SchedExperimentConfig;
    bench::Banner("EXP-OPT",
                  "§7.2.2: Wave-16 FIFO saturation vs optimization level");

    struct Level {
        const char* name;
        api::OptimizationConfig opt;
        bool prestage;
        const char* paper;
    };
    api::OptimizationConfig none = api::OptimizationConfig::None();
    api::OptimizationConfig nic_wb = none;
    nic_wb.nic_wb_ptes = true;
    api::OptimizationConfig wc_wt = nic_wb;
    wc_wt.host_wc_wt_ptes = true;

    const Level levels[] = {
        {"Baseline (No Optimizations)", none, false, "258,000"},
        {"+ SmartNIC WB PTEs (§5.3.1)", nic_wb, false, "520,000 (+102%)"},
        {"+ Host WC/WT PTEs (§5.3.1)", wc_wt, false, "680,000 (+31%)"},
        {"+ Prestage and Prefetch (§5.4)", api::OptimizationConfig::Full(),
         true, "895,000 (+32%)"},
    };

    stats::Table table({"configuration", "saturation tput", "delta",
                        "paper"});
    double previous = 0;
    for (const Level& level : levels) {
        SchedExperimentConfig cfg;
        cfg.deployment = Deployment::kWave;
        cfg.policy = workload::PolicyKind::kFifo;
        cfg.worker_cores = 16;
        cfg.num_workers = 64;
        cfg.opt = level.opt;
        cfg.prestage = level.prestage;
        cfg.prestage_min_depth = 4;
        cfg.warmup_ns = 20'000'000;
        cfg.measure_ns = 80'000'000;
        const double sat = workload::FindSaturationThroughput(
            cfg, 200'000, 1'400'000, 100'000);
        const std::string delta =
            previous > 0 ? bench::FmtPct(sat / previous - 1.0) : "-";
        table.AddRow({level.name, bench::FmtTput(sat), delta, level.paper});
        previous = sat;
    }
    table.Print();
}

}  // namespace

int
main(int argc, char** argv)
{
    const auto json_args = bench::JsonCliArgs::Parse(argc, argv);
    if (!json_args.json_path.empty()) {
        bench::BenchJson json("queue_ladder");
        MeasureQueueRung(&json, json_args.quick);
        return json.WriteTo(json_args.json_path) ? 0 : 1;
    }
    RunPaperLadder();
    MeasureQueueRung(nullptr, /*quick=*/true);
    return 0;
}
