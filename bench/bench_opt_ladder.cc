/**
 * @file
 * EXP-OPT: reproduces the §7.2.2 optimization-ladder table — FIFO
 * Wave-16 saturation throughput as each §5.3/§5.4 optimization is
 * enabled cumulatively (paper: 258k -> +102% -> +31% -> +32%).
 */
#include "bench/bench_util.h"
#include "stats/table.h"
#include "workload/sched_experiment.h"

int
main()
{
    using namespace wave;
    using workload::Deployment;
    using workload::SchedExperimentConfig;
    bench::Banner("EXP-OPT",
                  "§7.2.2: Wave-16 FIFO saturation vs optimization level");

    struct Level {
        const char* name;
        api::OptimizationConfig opt;
        bool prestage;
        const char* paper;
    };
    api::OptimizationConfig none = api::OptimizationConfig::None();
    api::OptimizationConfig nic_wb = none;
    nic_wb.nic_wb_ptes = true;
    api::OptimizationConfig wc_wt = nic_wb;
    wc_wt.host_wc_wt_ptes = true;

    const Level levels[] = {
        {"Baseline (No Optimizations)", none, false, "258,000"},
        {"+ SmartNIC WB PTEs (§5.3.1)", nic_wb, false, "520,000 (+102%)"},
        {"+ Host WC/WT PTEs (§5.3.1)", wc_wt, false, "680,000 (+31%)"},
        {"+ Prestage and Prefetch (§5.4)", api::OptimizationConfig::Full(),
         true, "895,000 (+32%)"},
    };

    stats::Table table({"configuration", "saturation tput", "delta",
                        "paper"});
    double previous = 0;
    for (const Level& level : levels) {
        SchedExperimentConfig cfg;
        cfg.deployment = Deployment::kWave;
        cfg.policy = workload::PolicyKind::kFifo;
        cfg.worker_cores = 16;
        cfg.num_workers = 64;
        cfg.opt = level.opt;
        cfg.prestage = level.prestage;
        cfg.prestage_min_depth = 4;
        cfg.warmup_ns = 20'000'000;
        cfg.measure_ns = 80'000'000;
        const double sat = workload::FindSaturationThroughput(
            cfg, 200'000, 1'400'000, 100'000);
        const std::string delta =
            previous > 0 ? bench::FmtPct(sat / previous - 1.0) : "-";
        table.AddRow({level.name, bench::FmtTput(sat), delta, level.paper});
        previous = sat;
    }
    table.Print();
    return 0;
}
