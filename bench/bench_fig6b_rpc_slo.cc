/**
 * @file
 * EXP-F6B: reproduces Figure 6b — multi-queue Shinjuku using the SLO
 * carried in each RPC payload (§7.3.2).
 *
 * SLO-aware steering requires the scheduler to see the payload: cheap
 * when it is co-located with the RPC stack (OnHost-All in host memory,
 * Offload-All in NIC DRAM), ruinous when the on-host scheduler must
 * read it across PCIe. Paper shape: Offload-All gains ~20.8% over its
 * single-queue self; the OnHost-Scheduler gap widens; Offload-All ends
 * within 2.2% of OnHost-All while freeing 9 host cores; apples-to-
 * apples (15 cores) -7.4%.
 */
#include "bench/bench_util.h"
#include "rpc/rpc_experiment.h"
#include "stats/table.h"

namespace {

using namespace wave;
using rpc::RpcExperimentConfig;
using rpc::RpcScenario;

RpcExperimentConfig
Scenario(RpcScenario scenario, bool multi_queue, int rocksdb_cores)
{
    RpcExperimentConfig cfg;
    cfg.scenario = scenario;
    cfg.multi_queue = multi_queue;
    cfg.rocksdb_cores = rocksdb_cores;
    cfg.warmup_ns = 40'000'000;
    cfg.measure_ns = 150'000'000;
    return cfg;
}

double
Saturation(RpcScenario scenario, bool multi_queue, int cores)
{
    return rpc::FindRpcSaturation(Scenario(scenario, multi_queue, cores),
                                  60'000, 250'000, 10'000, 200'000);
}

}  // namespace

int
main()
{
    bench::Banner("EXP-F6B",
                  "Figure 6b: multi-queue Shinjuku with RPC SLOs");

    struct Row {
        const char* name;
        RpcScenario scenario;
        int cores;
    };
    const Row rows[] = {
        {"OnHost-All", RpcScenario::kOnHostAll, 15},
        {"OnHost-Scheduler", RpcScenario::kOnHostScheduler, 15},
        {"Offload-All", RpcScenario::kOffloadAll, 16},
    };

    stats::Table curve({"offered", "scenario", "achieved", "GET p99"});
    for (double rps = 80'000; rps <= 230'000; rps += 50'000) {
        for (const Row& row : rows) {
            RpcExperimentConfig cfg =
                Scenario(row.scenario, true, row.cores);
            cfg.offered_rps = rps;
            const auto r = rpc::RunRpcExperiment(cfg);
            curve.AddRow({bench::FmtTput(rps), row.name,
                          bench::FmtTput(r.achieved_rps),
                          bench::FmtNs(r.get_p99.ToDouble())});
        }
    }
    curve.Print();

    stats::PrintHeading("Saturation summary (GET p99 <= 200us knee)");
    const double onhost_all = Saturation(RpcScenario::kOnHostAll, true, 15);
    const double onhost_sched =
        Saturation(RpcScenario::kOnHostScheduler, true, 15);
    const double offload_mq = Saturation(RpcScenario::kOffloadAll, true, 16);
    const double offload_sq =
        Saturation(RpcScenario::kOffloadAll, false, 16);
    const double offload_15 = Saturation(RpcScenario::kOffloadAll, true, 15);

    stats::Table summary({"comparison", "measured", "paper"});
    summary.AddRow({"Offload-All mq vs single-queue",
                    bench::FmtPct(offload_mq / offload_sq - 1.0),
                    "+20.8%"});
    summary.AddRow({"Offload-All (16c) vs OnHost-All",
                    bench::FmtPct(offload_mq / onhost_all - 1.0),
                    "-2.2% (frees 9 cores)"});
    summary.AddRow({"OnHost-Scheduler vs OnHost-All",
                    bench::FmtPct(onhost_sched / onhost_all - 1.0),
                    "gap widens vs 6a"});
    summary.AddRow({"Offload-All (15c) vs OnHost-All",
                    bench::FmtPct(offload_15 / onhost_all - 1.0),
                    "-7.4%"});
    summary.Print();
    return 0;
}
