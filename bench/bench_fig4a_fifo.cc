/**
 * @file
 * EXP-F4A: reproduces Figure 4a — FIFO run-to-completion scheduling of
 * 10 µs GETs: throughput-latency curves for On-Host ghOSt (15 workers
 * + 1 agent core), Wave-15 (apples-to-apples), and Wave-16 (using the
 * freed host core).
 *
 * Paper shape: Wave-15 saturates 1.1% below On-Host with a few µs more
 * tail latency; Wave-16 saturates 4.6% above On-Host.
 */
#include "bench/bench_util.h"
#include "stats/table.h"
#include "workload/sched_experiment.h"

namespace {

using namespace wave;
using workload::Deployment;
using workload::SchedExperimentConfig;

SchedExperimentConfig
Scenario(int mode)
{
    SchedExperimentConfig cfg;
    cfg.deployment = mode == 0 ? Deployment::kOnHost : Deployment::kWave;
    cfg.worker_cores = mode == 2 ? 16 : 15;
    cfg.policy = workload::PolicyKind::kFifo;
    cfg.num_workers = 64;
    cfg.prestage_min_depth = 4;
    cfg.warmup_ns = 20'000'000;
    cfg.measure_ns = 80'000'000;
    return cfg;
}

}  // namespace

int
main()
{
    bench::Banner("EXP-F4A",
                  "Figure 4a: FIFO, 10us GETs — tput vs p99 latency");

    const char* names[] = {"On-Host", "Wave-15", "Wave-16"};

    stats::Table curve({"offered", "scenario", "achieved", "GET p50",
                        "GET p99"});
    for (double rps = 200'000; rps <= 1'300'000; rps += 100'000) {
        for (int mode = 0; mode < 3; ++mode) {
            SchedExperimentConfig cfg = Scenario(mode);
            cfg.offered_rps = rps;
            const auto r = workload::RunSchedExperiment(cfg);
            curve.AddRow({bench::FmtTput(rps), names[mode],
                          bench::FmtTput(r.achieved_rps),
                          bench::FmtNs(r.get_p50.ToDouble()),
                          bench::FmtNs(r.get_p99.ToDouble())});
        }
    }
    curve.Print();

    stats::PrintHeading("Saturation summary");
    double sat[3];
    for (int mode = 0; mode < 3; ++mode) {
        sat[mode] = workload::FindSaturationThroughput(
            Scenario(mode), 1'000'000, 1'400'000, 25'000);
    }
    stats::Table summary({"scenario", "saturation", "vs On-Host",
                          "paper"});
    summary.AddRow({"On-Host", bench::FmtTput(sat[0]), "-", "baseline"});
    summary.AddRow({"Wave-15", bench::FmtTput(sat[1]),
                    bench::FmtPct(sat[1] / sat[0] - 1.0), "-1.1%"});
    summary.AddRow({"Wave-16", bench::FmtTput(sat[2]),
                    bench::FmtPct(sat[2] / sat[0] - 1.0), "+4.6%"});
    summary.Print();
    return 0;
}
