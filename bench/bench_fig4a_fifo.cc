/**
 * @file
 * EXP-F4A: reproduces Figure 4a — FIFO run-to-completion scheduling of
 * 10 µs GETs: throughput-latency curves for On-Host ghOSt (15 workers
 * + 1 agent core), Wave-15 (apples-to-apples), and Wave-16 (using the
 * freed host core).
 *
 * Paper shape: Wave-15 saturates 1.1% below On-Host with a few µs more
 * tail latency; Wave-16 saturates 4.6% above On-Host.
 */
#include <chrono>

#include "bench/bench_json.h"
#include "bench/bench_util.h"
#include "stats/table.h"
#include "workload/sched_experiment.h"

namespace {

using namespace wave;
using workload::Deployment;
using workload::SchedExperimentConfig;

SchedExperimentConfig
Scenario(int mode)
{
    SchedExperimentConfig cfg;
    cfg.deployment = mode == 0 ? Deployment::kOnHost : Deployment::kWave;
    cfg.worker_cores = mode == 2 ? 16 : 15;
    cfg.policy = workload::PolicyKind::kFifo;
    cfg.num_workers = 64;
    cfg.prestage_min_depth = 4;
    cfg.warmup_ns = 20'000'000;
    cfg.measure_ns = 80'000'000;
    return cfg;
}

/**
 * JSON mode: one mid-curve point per scenario plus the Wave-vs-On-Host
 * saturation ratios the paper headlines, and the wall-clock cost of
 * simulating the experiment (the number the CI perf gate watches).
 * Quick mode shortens the measured window; the figure's shape survives,
 * only the tails get noisier.
 */
int
RunJsonMode(const bench::JsonCliArgs& args)
{
    bench::BenchJson json("fig4a_fifo");

    const char* keys[] = {"onhost", "wave15", "wave16"};
    const auto t0 = std::chrono::steady_clock::now();
    double sim_secs = 0.0;
    double sat[3];
    for (int mode = 0; mode < 3; ++mode) {
        SchedExperimentConfig cfg = Scenario(mode);
        if (args.quick) {
            cfg.warmup_ns = 5'000'000;
            cfg.measure_ns = 20'000'000;
        }
        cfg.offered_rps = 800'000;
        const auto r = workload::RunSchedExperiment(cfg);
        sim_secs += (cfg.warmup_ns + cfg.measure_ns).ToDouble() / 1e9;
        json.Add(std::string(keys[mode]) + "_achieved_rps_at_800k",
                 r.achieved_rps, "1/s");
        json.Add(std::string(keys[mode]) + "_get_p99_ns_at_800k",
                 r.get_p99.ToDouble(), "ns");

        SchedExperimentConfig sat_cfg = Scenario(mode);
        if (args.quick) {
            sat_cfg.warmup_ns = 5'000'000;
            sat_cfg.measure_ns = 20'000'000;
        }
        sat[mode] = workload::FindSaturationThroughput(
            sat_cfg, 1'000'000, 1'400'000, args.quick ? 100'000 : 25'000);
        sim_secs +=
            (sat_cfg.warmup_ns + sat_cfg.measure_ns).ToDouble() / 1e9 * 4;
    }
    const auto t1 = std::chrono::steady_clock::now();

    json.Add("wave15_vs_onhost_saturation", sat[1] / sat[0], "ratio");
    json.Add("wave16_vs_onhost_saturation", sat[2] / sat[0], "ratio");
    json.Add("wall_ns_per_sim_sec",
             std::chrono::duration<double, std::nano>(t1 - t0).count() /
                 sim_secs,
             "ns/sim-s");
    return json.WriteTo(args.json_path) ? 0 : 1;
}

}  // namespace

int
main(int argc, char** argv)
{
    const auto json_args = bench::JsonCliArgs::Parse(argc, argv);
    if (!json_args.json_path.empty()) {
        return RunJsonMode(json_args);
    }
    bench::Banner("EXP-F4A",
                  "Figure 4a: FIFO, 10us GETs — tput vs p99 latency");

    const char* names[] = {"On-Host", "Wave-15", "Wave-16"};

    stats::Table curve({"offered", "scenario", "achieved", "GET p50",
                        "GET p99"});
    for (double rps = 200'000; rps <= 1'300'000; rps += 100'000) {
        for (int mode = 0; mode < 3; ++mode) {
            SchedExperimentConfig cfg = Scenario(mode);
            cfg.offered_rps = rps;
            const auto r = workload::RunSchedExperiment(cfg);
            curve.AddRow({bench::FmtTput(rps), names[mode],
                          bench::FmtTput(r.achieved_rps),
                          bench::FmtNs(r.get_p50.ToDouble()),
                          bench::FmtNs(r.get_p99.ToDouble())});
        }
    }
    curve.Print();

    stats::PrintHeading("Saturation summary");
    double sat[3];
    for (int mode = 0; mode < 3; ++mode) {
        sat[mode] = workload::FindSaturationThroughput(
            Scenario(mode), 1'000'000, 1'400'000, 25'000);
    }
    stats::Table summary({"scenario", "saturation", "vs On-Host",
                          "paper"});
    summary.AddRow({"On-Host", bench::FmtTput(sat[0]), "-", "baseline"});
    summary.AddRow({"Wave-15", bench::FmtTput(sat[1]),
                    bench::FmtPct(sat[1] / sat[0] - 1.0), "-1.1%"});
    summary.AddRow({"Wave-16", bench::FmtTput(sat[2]),
                    bench::FmtPct(sat[2] / sat[0] - 1.0), "+4.6%"});
    summary.Print();
    return 0;
}
