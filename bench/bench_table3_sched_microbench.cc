/**
 * @file
 * EXP-T3: reproduces Table 3 — scheduling microbenchmarks.
 *
 * Row group 1/3: how long an agent takes to open (stage + publish) a
 * decision and kick the host — on the SmartNIC with uncacheable vs
 * write-back local mappings, and on host with an IPI.
 *
 * Row group 2/4: host context-switch overhead (thread stops -> next
 * thread runs) measured in a live FIFO deployment with a deep run
 * queue, at each optimization level. Five seeds, range of medians,
 * as in the paper.
 */
#include <algorithm>

#include "bench/bench_util.h"
#include "ghost/agent.h"
#include "ghost/kernel.h"
#include "ghost/transport.h"
#include "sched/fifo.h"
#include "machine/machine.h"
#include "sim/simulator.h"
#include "stats/table.h"
#include "wave/runtime.h"
#include "workload/sched_experiment.h"

namespace wave {
namespace {

using sim::Simulator;
using sim::Task;
using sim::DurationNs;
using sim::TimeNs;

/** Agent-side decision-open + kick latency on a given transport. */
DurationNs
MeasureDecisionOpen(bool on_nic, bool nic_wb)
{
    Simulator sim;
    machine::Machine machine(sim);
    api::OptimizationConfig opt;
    opt.nic_wb_ptes = nic_wb;
    WaveRuntime runtime(sim, machine, pcie::PcieConfig{}, opt);

    std::unique_ptr<ghost::SchedTransport> transport;
    if (on_nic) {
        transport = std::make_unique<ghost::WaveSchedTransport>(runtime, 1);
    } else {
        transport = std::make_unique<ghost::ShmSchedTransport>(sim, 1);
    }

    DurationNs cost{};
    sim.Spawn([](Simulator& s, ghost::SchedTransport& t,
                 DurationNs& out) -> Task<> {
        ghost::GhostDecision d{};
        d.type = ghost::DecisionType::kRunThread;
        d.tid = 1;
        d.core = 0;
        const TimeNs t0 = s.Now();
        t.AgentStageDecision(d);
        co_await t.AgentCommit(0, /*kick=*/true);
        out = s.Now() - t0;
    }(sim, *transport, cost));
    sim.Run();
    return cost;
}

/** Thread body that runs ~10 us then yields, staying runnable. */
class YieldingBody : public ghost::ThreadBody {
  public:
    explicit YieldingBody(sim::DurationNs service) : service_(service) {}

    Task<ghost::RunStop>
    Run(ghost::RunContext& ctx) override
    {
        sim::DurationNs remaining = service_;
        while (remaining > 0) {
            const auto ran =
                co_await ctx.interrupt.SleepInterruptible(remaining);
            remaining -= std::min(ran, remaining);
            if (remaining > 0) co_return ghost::RunStop::kPreempted;
        }
        co_return ghost::RunStop::kYielded;
    }

  private:
    sim::DurationNs service_;
};

/**
 * Context-switch overhead with an always-deep run queue (the Table 3
 * microbench condition: prestaging is always possible and the agent is
 * far from saturation). Two worker cores, 64 yielding threads; range
 * of medians over 5 runs with staggered service times.
 */
std::pair<DurationNs, DurationNs>
MeasureCtxSwitch(workload::Deployment deployment,
                 api::OptimizationConfig opt, bool prestage)
{
    DurationNs lo = ~0ull;
    DurationNs hi{};
    for (int run = 0; run < 5; ++run) {
        Simulator sim;
        machine::Machine machine(sim);
        WaveRuntime runtime(sim, machine, pcie::PcieConfig{}, opt);

        const int cores = 2;
        std::unique_ptr<ghost::SchedTransport> transport;
        if (deployment == workload::Deployment::kWave) {
            transport = std::make_unique<ghost::WaveSchedTransport>(
                runtime, cores);
        } else {
            transport =
                std::make_unique<ghost::ShmSchedTransport>(sim, cores);
        }
        ghost::KernelOptions options;
        options.prefetch_decisions =
            deployment == workload::Deployment::kOnHost ||
            opt.prestage_prefetch;
        ghost::KernelSched kernel(sim, machine, *transport,
                                  ghost::GhostCosts{}, options);

        auto policy = std::make_shared<sched::FifoPolicy>();
        ghost::AgentConfig agent_cfg;
        agent_cfg.cores = {0, 1};
        agent_cfg.prestage = prestage;
        agent_cfg.prestage_min_depth = 1;
        auto agent = std::make_shared<ghost::GhostAgent>(
            *transport, policy, agent_cfg);
        std::unique_ptr<AgentContext> host_ctx;
        if (deployment == workload::Deployment::kWave) {
            runtime.StartWaveAgent(agent, 0);
        } else {
            host_ctx = std::make_unique<AgentContext>(
                sim, machine.HostCpu(cores));
            sim.Spawn(agent->Run(*host_ctx));
        }

        for (ghost::Tid tid = 1; tid <= 64; ++tid) {
            // Staggered service times give run-to-run spread.
            const sim::DurationNs service =
                9'000 + 100 * ((tid + run * 7) % 20);
            kernel.AddThread(tid, std::make_shared<YieldingBody>(service));
        }
        kernel.Start({0, 1});
        sim.RunFor(50'000'000);

        const DurationNs median =
            kernel.Stats().ctx_switch_overhead.Percentile(0.50);
        lo = std::min(lo, median);
        hi = std::max(hi, median);
    }
    return {lo, hi};
}

std::string
FmtRange(std::pair<DurationNs, DurationNs> range)
{
    return stats::Table::Fmt("%.0f-%.0f ns",
                             range.first.ToDouble(),
                             range.second.ToDouble());
}

}  // namespace
}  // namespace wave

int
main()
{
    using namespace wave;
    using workload::Deployment;
    bench::Banner("EXP-T3", "Table 3: scheduling microbenchmarks");

    stats::Table table({"row", "measured", "paper"});

    table.AddRow({"-- Offloaded Kernel Thread Scheduler with Wave --", "",
                  ""});
    table.AddRow(
        {"1. Open Decision + MSI-X, baseline",
         bench::FmtNs(MeasureDecisionOpen(true, false).ToDouble()),
         "1,013 ns"});
    table.AddRow(
        {"   with WB PTEs on SmartNIC",
         bench::FmtNs(MeasureDecisionOpen(true, true).ToDouble()),
         "426 ns"});

    api::OptimizationConfig baseline = api::OptimizationConfig::None();
    api::OptimizationConfig nic_wb = baseline;
    nic_wb.nic_wb_ptes = true;
    api::OptimizationConfig wc_wt = nic_wb;
    wc_wt.host_wc_wt_ptes = true;
    api::OptimizationConfig full = api::OptimizationConfig::Full();

    table.AddRow({"2. Context Switch Overhead on Host", "", ""});
    table.AddRow({"   Baseline",
                  FmtRange(MeasureCtxSwitch(Deployment::kWave, baseline,
                                            false)),
                  "13,310-13,530 ns"});
    table.AddRow({"   with WB PTEs on SmartNIC",
                  FmtRange(MeasureCtxSwitch(Deployment::kWave, nic_wb,
                                            false)),
                  "9,940-10,160 ns"});
    table.AddRow({"   and with WC/WT PTEs on Host",
                  FmtRange(MeasureCtxSwitch(Deployment::kWave, wc_wt,
                                            false)),
                  "6,100-6,910 ns"});
    table.AddRow({"   and with Pre-Staging & Prefetching",
                  FmtRange(MeasureCtxSwitch(Deployment::kWave, full, true)),
                  "3,320-4,040 ns"});

    table.AddRow({"-- On-Host ghOSt Scheduler --", "", ""});
    table.AddRow(
        {"3. Open Decision + Interrupt",
         bench::FmtNs(MeasureDecisionOpen(false, false).ToDouble()),
         "770 ns"});
    table.AddRow({"4. Context Switch Overhead on Host", "", ""});
    table.AddRow({"   Baseline",
                  FmtRange(MeasureCtxSwitch(Deployment::kOnHost, full,
                                            false)),
                  "4,380-4,990 ns"});
    table.AddRow({"   with Pre-Staging",
                  FmtRange(MeasureCtxSwitch(Deployment::kOnHost, full,
                                            true)),
                  "2,350-3,260 ns"});
    table.Print();
    return 0;
}
